"""Property tests for the packed-outcome backend.

Covers the tentpole invariants of the array-native core:

* pack/unpack round-trips for random widths from 1 to 70 bits (crossing the
  one-word/two-word boundary) and random supports;
* array kernels (``hamming_spectrum``, ``average_chs``,
  ``cumulative_hamming_strength``, ``distance_to_correct_set``) agree with
  straightforward pure-Python references;
* the vectorised ``hammer`` agrees with ``hammer_reference`` under all four
  combinations of the ``use_filter`` / ``include_self_probability`` knobs;
* packed views survive (are shared, sliced — never rebuilt) across the
  derived-distribution operations pipelines chain.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Distribution, HammerConfig, PackedOutcomes, hammer, hammer_reference
from repro.core.pipeline import HammerStage, PostProcessingPipeline, TruncationStage
from repro.core.spectrum import (
    average_chs,
    cumulative_hamming_strength,
    distance_to_correct_set,
    hamming_spectrum,
)
from repro.exceptions import BitstringError, DistributionError


def random_support(rng: np.random.Generator, num_bits: int, size: int) -> list[str]:
    """Distinct random bitstrings of the given width."""
    population = min(1 << min(num_bits, 20), 4 * size)
    values = rng.choice(population, size=min(size, population), replace=False)
    return [format(int(v), f"0{num_bits}b") for v in values]


widths = st.integers(min_value=1, max_value=70)


@st.composite
def supports(draw):
    """A (width, outcomes) pair with 1-24 distinct outcomes of that width."""
    num_bits = draw(widths)
    seed = draw(st.integers(min_value=0, max_value=2**31))
    size = draw(st.integers(min_value=1, max_value=24))
    rng = np.random.default_rng(seed)
    bits = rng.integers(0, 2, size=(size, num_bits), dtype=np.uint8)
    unique = np.unique(bits, axis=0)
    strings = ["".join("1" if b else "0" for b in row) for row in unique]
    return num_bits, strings


@st.composite
def random_distributions(draw):
    num_bits, strings = draw(supports())
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=len(strings),
            max_size=len(strings),
        )
    )
    return Distribution(dict(zip(strings, weights)), num_bits=num_bits)


class TestPackRoundTrip:
    @given(supports())
    @settings(max_examples=60, deadline=None)
    def test_strings_round_trip(self, width_and_strings):
        num_bits, strings = width_and_strings
        packed = PackedOutcomes.from_strings(strings, num_bits=num_bits)
        assert packed.to_strings() == strings
        assert packed.words.shape == (len(strings), (num_bits + 63) // 64)

    @given(supports())
    @settings(max_examples=60, deadline=None)
    def test_bit_matrix_round_trip(self, width_and_strings):
        num_bits, strings = width_and_strings
        packed = PackedOutcomes.from_strings(strings, num_bits=num_bits)
        rebuilt = PackedOutcomes.from_bit_matrix(packed.bit_matrix().copy())
        assert np.array_equal(rebuilt.words, packed.words)
        assert rebuilt.to_strings() == strings

    @given(supports())
    @settings(max_examples=40, deadline=None)
    def test_packed_words_match_per_string_ints(self, width_and_strings):
        num_bits, strings = width_and_strings
        packed = PackedOutcomes.from_strings(strings, num_bits=num_bits)
        num_words = (num_bits + 63) // 64
        for row, outcome in enumerate(strings):
            for word_index in range(num_words):
                chunk = outcome[word_index * 64 : (word_index + 1) * 64]
                assert int(packed.words[row, word_index]) == int(chunk, 2)

    def test_aggregate_counts_shots(self):
        rng = np.random.default_rng(7)
        bits = rng.integers(0, 2, size=(500, 9), dtype=np.uint8)
        packed, counts = PackedOutcomes.aggregate_bit_matrix(bits)
        assert counts.sum() == 500
        # Sorted, deterministic support regardless of shot order.
        shuffled = bits[rng.permutation(500)]
        packed2, counts2 = PackedOutcomes.aggregate_bit_matrix(shuffled)
        assert np.array_equal(packed.words, packed2.words)
        assert np.array_equal(counts, counts2)

    def test_rejects_empty(self):
        with pytest.raises(BitstringError):
            PackedOutcomes.from_strings([])
        with pytest.raises(BitstringError):
            PackedOutcomes.aggregate_bit_matrix(np.zeros((0, 4), dtype=np.uint8))

    def test_rejects_non_binary_matrix(self):
        with pytest.raises(BitstringError):
            PackedOutcomes.from_bit_matrix(np.array([[2, 0], [0, 1]]))


class TestDistanceKernels:
    @given(supports())
    @settings(max_examples=40, deadline=None)
    def test_block_distances_match_brute_force(self, width_and_strings):
        _, strings = width_and_strings
        packed = PackedOutcomes.from_strings(strings)
        distances = packed.block_distances(0, packed.num_outcomes)
        brute = np.array(
            [[sum(a != b for a, b in zip(x, y)) for y in strings] for x in strings]
        )
        assert np.array_equal(distances, brute)

    @given(supports())
    @settings(max_examples=40, deadline=None)
    def test_min_distances_match_scalar(self, width_and_strings):
        _, strings = width_and_strings
        packed = PackedOutcomes.from_strings(strings)
        correct = PackedOutcomes.from_strings(strings[: max(1, len(strings) // 3)])
        minima = packed.min_distances_to(correct)
        for outcome, found in zip(strings, minima):
            assert found == distance_to_correct_set(outcome, correct.to_strings())


def _reference_spectrum_bins(dist: Distribution, correct: list[str]) -> np.ndarray:
    bins = np.zeros(dist.num_bits + 1)
    for outcome, probability in dist.items():
        best = min(sum(a != b for a, b in zip(outcome, c)) for c in correct)
        bins[best] += probability
    return bins


def _reference_average_chs(dist: Distribution, limit: int) -> np.ndarray:
    probabilities = dist.probabilities()
    chs = np.zeros(limit + 1)
    for x in probabilities:
        for y, p in probabilities.items():
            distance = sum(a != b for a, b in zip(x, y))
            if distance <= limit:
                chs[distance] += p
    return chs / len(probabilities)


class TestSpectrumAgainstReference:
    @given(random_distributions())
    @settings(max_examples=30, deadline=None)
    def test_hamming_spectrum_matches_reference(self, dist):
        correct = dist.outcomes()[: max(1, dist.num_outcomes // 4)]
        bins = hamming_spectrum(dist, correct).bins
        assert np.allclose(bins, _reference_spectrum_bins(dist, correct), atol=1e-12)

    @given(random_distributions())
    @settings(max_examples=25, deadline=None)
    def test_average_chs_matches_reference(self, dist):
        result = average_chs(dist)
        assert np.allclose(result, _reference_average_chs(dist, dist.num_bits), atol=1e-12)

    @given(random_distributions())
    @settings(max_examples=25, deadline=None)
    def test_cumulative_chs_matches_reference(self, dist):
        outcome = dist.outcomes()[0]
        chs = cumulative_hamming_strength(dist, outcome)
        expected = np.zeros(dist.num_bits + 1)
        for y, p in dist.items():
            expected[sum(a != b for a, b in zip(outcome, y))] += p
        assert np.allclose(chs, expected, atol=1e-12)


class TestDenseChsPath:
    """Supports wide enough to trigger the Walsh–Hadamard CHS fast path."""

    def _wide_support_distribution(self, num_bits: int = 8, size: int = 120) -> Distribution:
        rng = np.random.default_rng(13)
        values = rng.choice(1 << num_bits, size=size, replace=False)
        weights = rng.random(size) + 0.01
        data = {format(int(v), f"0{num_bits}b"): float(w) for v, w in zip(values, weights)}
        return Distribution(data, num_bits=num_bits)

    def test_dense_path_is_selected(self):
        from repro.core.bitstring import _DENSE_CHS_MAX_BITS

        dist = self._wide_support_distribution()
        assert dist.num_bits <= _DENSE_CHS_MAX_BITS
        assert (3 * dist.num_bits + 1) * (1 << dist.num_bits) < dist.num_outcomes**2

    def test_dense_average_chs_matches_reference(self):
        dist = self._wide_support_distribution()
        assert np.allclose(
            average_chs(dist), _reference_average_chs(dist, dist.num_bits), atol=1e-9
        )

    def test_dense_hammer_matches_reference(self):
        dist = self._wide_support_distribution()
        vectorized = hammer(dist)
        reference = hammer_reference(dist)
        for outcome in dist.outcomes():
            assert vectorized.probability(outcome) == pytest.approx(
                reference.probability(outcome), abs=1e-9
            )


class TestHammerKnobsAgainstReference:
    @pytest.mark.parametrize("use_filter", [True, False])
    @pytest.mark.parametrize("include_self", [True, False])
    @given(dist=random_distributions())
    @settings(max_examples=10, deadline=None)
    def test_all_knob_combinations(self, dist, use_filter, include_self):
        config = HammerConfig(use_filter=use_filter, include_self_probability=include_self)
        vectorized = hammer(dist, config)
        reference = hammer_reference(dist, config)
        for outcome in dist.outcomes():
            assert vectorized.probability(outcome) == pytest.approx(
                reference.probability(outcome), abs=1e-9
            )


class TestDistributionArrayBackend:
    def test_from_bit_matrix_counts(self):
        bits = np.array([[0, 1], [0, 1], [1, 0], [0, 1]], dtype=np.uint8)
        dist = Distribution.from_bit_matrix(bits)
        assert dist.probability("01") == pytest.approx(0.75)
        assert dist.probability("10") == pytest.approx(0.25)
        assert dist.has_packed_view()

    def test_from_bit_matrix_rejects_empty(self):
        with pytest.raises(DistributionError):
            Distribution.from_bit_matrix(np.zeros((0, 3), dtype=np.uint8))

    def test_from_packed_rejects_duplicate_rows(self):
        duplicated = PackedOutcomes.from_bit_matrix(
            np.array([[0, 1], [0, 1], [1, 0]], dtype=np.uint8)
        )
        with pytest.raises(DistributionError):
            Distribution.from_packed(duplicated, weights=np.array([0.25, 0.25, 0.5]))

    def test_from_packed_shares_words(self):
        dist = Distribution({"0011": 1.0, "1100": 3.0})
        packed = dist.packed()
        derived = Distribution.from_packed(packed.with_probabilities(np.array([0.5, 0.5])))
        assert derived.packed().words is packed.words
        assert derived.probability("0011") == pytest.approx(0.5)

    def test_probability_vector_cached_and_normalised(self):
        dist = Distribution({"00": 1.0, "11": 3.0})
        vec = dist.probability_vector()
        assert vec is dist.probability_vector()
        assert vec.sum() == pytest.approx(1.0)
        assert dist.probability_vector()[1] == pytest.approx(0.75)

    def test_top_k_breaks_ties_lexicographically(self):
        ascending = Distribution({"10": 1.0, "01": 1.0, "11": 2.0})
        descending = Distribution({"01": 1.0, "10": 1.0, "11": 2.0})
        assert ascending.top_k(2).outcomes() == descending.top_k(2).outcomes() == ["11", "01"]

    def test_top_k_slices_packed_view(self):
        dist = Distribution({"10": 1.0, "01": 2.0, "11": 4.0})
        dist.packed()
        top = dist.top_k(2)
        assert top.has_packed_view()
        assert top.outcomes() == ["11", "01"]
        assert top.probability_vector()[0] == pytest.approx(4.0 / 6.0)

    def test_mapped_and_marginal_preserve_semantics(self):
        dist = Distribution({"011": 1.0, "110": 3.0})
        remapped = dist.mapped([2, 1, 0])
        assert remapped.probability("110") == pytest.approx(0.25)
        assert remapped.probability("011") == pytest.approx(0.75)
        marginal = dist.marginal([0, 2])
        assert marginal.probability("01") == pytest.approx(0.25)
        assert marginal.probability("10") == pytest.approx(0.75)


class TestPipelinePacksOnce:
    def test_stage_outputs_carry_packed_view(self):
        rng = np.random.default_rng(5)
        bits = rng.integers(0, 2, size=(4000, 10), dtype=np.uint8)
        noisy = Distribution.from_bit_matrix(bits)
        assert noisy.has_packed_view()
        pipeline = PostProcessingPipeline([TruncationStage(top_k=50), HammerStage()])
        truncated = pipeline.stages[0].apply(noisy)
        assert truncated.has_packed_view()
        corrected = pipeline.stages[1].apply(truncated)
        assert corrected.has_packed_view()
        # HAMMER's output shares the truncated support's packed words.
        assert corrected.packed().words is truncated.packed().words

    def test_trace_pipeline_reports_cached_stages(self):
        from repro.experiments.runner import trace_pipeline

        noisy = Distribution.from_bit_matrix(
            np.random.default_rng(9).integers(0, 2, size=(1000, 8), dtype=np.uint8)
        )
        pipeline = PostProcessingPipeline([TruncationStage(top_k=30), HammerStage()])
        final, rows = trace_pipeline(pipeline, noisy)
        assert [row["stage"] for row in rows] == ["input", "truncate", "hammer"]
        assert all(row["packed_cached"] for row in rows)
        assert final.num_outcomes <= 30
