"""Tests for Hamming spectrum, CHS and EHD."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Distribution,
    average_chs,
    cumulative_hamming_strength,
    distance_to_correct_set,
    expected_hamming_distance,
    hamming_spectrum,
    uniform_model_ehd,
)
from repro.exceptions import DistributionError


def small_distributions(num_bits: int = 5):
    outcome = st.integers(min_value=0, max_value=2**num_bits - 1).map(
        lambda v: format(v, f"0{num_bits}b")
    )
    return st.dictionaries(outcome, st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=10).map(
        lambda data: Distribution(data, num_bits=num_bits)
    )


class TestDistanceToCorrectSet:
    def test_single_reference(self):
        assert distance_to_correct_set("0011", ["0000"]) == 2

    def test_multiple_references_takes_shortest(self):
        assert distance_to_correct_set("0011", ["0000", "0111"]) == 1

    def test_rejects_empty_reference_set(self):
        with pytest.raises(DistributionError):
            distance_to_correct_set("0011", [])


class TestHammingSpectrum:
    def test_bins_sum_to_one(self):
        dist = Distribution({"000": 0.5, "001": 0.3, "111": 0.2})
        spectrum = hamming_spectrum(dist, ["000"])
        assert spectrum.bins.sum() == pytest.approx(1.0)

    def test_bin_assignment(self):
        dist = Distribution({"000": 0.5, "001": 0.3, "111": 0.2})
        spectrum = hamming_spectrum(dist, ["000"])
        assert spectrum.bin_probability(0) == pytest.approx(0.5)
        assert spectrum.bin_probability(1) == pytest.approx(0.3)
        assert spectrum.bin_probability(3) == pytest.approx(0.2)
        assert spectrum.correct_probability() == pytest.approx(0.5)

    def test_multiple_correct_outcomes(self):
        dist = Distribution({"000": 0.4, "111": 0.4, "011": 0.2})
        spectrum = hamming_spectrum(dist, ["000", "111"])
        assert spectrum.bin_probability(0) == pytest.approx(0.8)
        assert spectrum.bin_probability(1) == pytest.approx(0.2)

    def test_bin_average_probability(self):
        dist = Distribution({"000": 0.5, "001": 0.25, "010": 0.25})
        spectrum = hamming_spectrum(dist, ["000"])
        assert spectrum.bin_average_probability(1) == pytest.approx(0.25)
        assert spectrum.bin_average_probability(3) == 0.0

    def test_nonzero_bins_and_series(self):
        dist = Distribution({"000": 0.5, "011": 0.5})
        spectrum = hamming_spectrum(dist, ["000"])
        assert spectrum.nonzero_bins() == [0, 2]
        assert len(spectrum.as_series()) == 4

    def test_rejects_empty_correct_set(self):
        with pytest.raises(DistributionError):
            hamming_spectrum(Distribution({"0": 1.0}), [])

    def test_rejects_out_of_range_bin(self):
        spectrum = hamming_spectrum(Distribution({"00": 1.0}), ["00"])
        with pytest.raises(DistributionError):
            spectrum.bin_probability(5)

    @given(small_distributions())
    @settings(max_examples=25)
    def test_bins_always_sum_to_one(self, dist):
        spectrum = hamming_spectrum(dist, ["0" * dist.num_bits])
        assert spectrum.bins.sum() == pytest.approx(1.0)


class TestCumulativeHammingStrength:
    def test_self_bin_contains_own_probability(self):
        dist = Distribution({"00": 0.7, "01": 0.2, "11": 0.1})
        chs = cumulative_hamming_strength(dist, "00")
        assert chs[0] == pytest.approx(0.7)
        assert chs[1] == pytest.approx(0.2)
        assert chs[2] == pytest.approx(0.1)

    def test_truncated_max_distance(self):
        dist = Distribution({"00": 0.7, "11": 0.3})
        chs = cumulative_hamming_strength(dist, "00", max_distance=1)
        assert len(chs) == 2
        assert chs.sum() == pytest.approx(0.7)

    def test_rejects_negative_max_distance(self):
        with pytest.raises(DistributionError):
            cumulative_hamming_strength(Distribution({"0": 1.0}), "0", max_distance=-1)

    @given(small_distributions())
    @settings(max_examples=25)
    def test_full_chs_sums_to_one(self, dist):
        outcome = dist.outcomes()[0]
        chs = cumulative_hamming_strength(dist, outcome)
        assert chs.sum() == pytest.approx(1.0)


class TestAverageChs:
    def test_matches_manual_average(self):
        dist = Distribution({"00": 0.5, "01": 0.5})
        average = average_chs(dist)
        # Each outcome sees itself at d=0 (0.5 each) and the other at d=1.
        assert average[0] == pytest.approx(0.5)
        assert average[1] == pytest.approx(0.5)

    @given(small_distributions())
    @settings(max_examples=20)
    def test_average_chs_sums_to_one(self, dist):
        assert average_chs(dist).sum() == pytest.approx(1.0)


class TestExpectedHammingDistance:
    def test_perfect_distribution_has_zero_ehd(self):
        assert expected_hamming_distance(Distribution({"0101": 1.0}), ["0101"]) == 0.0

    def test_uniform_distribution_approaches_half_n(self):
        uniform = Distribution.uniform(8)
        ehd = expected_hamming_distance(uniform, ["00000000"])
        assert ehd == pytest.approx(4.0)

    def test_weighted_average(self):
        dist = Distribution({"000": 0.5, "011": 0.5})
        assert expected_hamming_distance(dist, ["000"]) == pytest.approx(1.0)

    @given(small_distributions())
    @settings(max_examples=25)
    def test_ehd_bounds(self, dist):
        ehd = expected_hamming_distance(dist, ["0" * dist.num_bits])
        assert 0.0 <= ehd <= dist.num_bits

    def test_uniform_model_reference(self):
        assert uniform_model_ehd(10) == 5.0
        with pytest.raises(DistributionError):
            uniform_model_ehd(0)
