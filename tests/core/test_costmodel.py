"""Tests for the calibrated cost model: fitting, persistence, precedence."""

from __future__ import annotations

import json
import warnings

import numpy as np
import pytest

from repro.core import costmodel, tuning
from repro.core.costmodel import (
    CostCurve,
    MachineProfile,
    fit_cost_curve,
    load_profile,
    profile_path,
    save_profile,
)
from repro.core.kernels import DENSE_SUPPORT_MAX, choose_plan
from repro.exceptions import CostModelError


@pytest.fixture(autouse=True)
def _isolated_costmodel():
    """Each test starts with no active profile and clean decision counters."""
    costmodel.set_active_profile(None)
    costmodel.reset_decisions()
    yield
    costmodel.reset_active_profile()
    costmodel.reset_decisions()


def _kernel_curve(quadratic: float, linear: float = 1e-6) -> CostCurve:
    return CostCurve(terms=("n2w", "n", "1"), coefficients=(quadratic, linear, 0.0))


def _profile(**overrides) -> MachineProfile:
    fields = dict(
        kernels={
            "tiled": _kernel_curve(1e-9),
            "streaming": _kernel_curve(2e-9),
        },
        sampler=CostCurve(
            terms=("shots_qubits", "shots", "1"), coefficients=(1e-8, 1e-7, 1e-4)
        ),
        shard={"chunk_shots": 2048.0, "min_shots": 2048.0, "per_chunk_overhead": 1e-4},
        engine={"per_job_overhead": 1e-4, "parallel_min_seconds": 0.05},
        backends={
            "statevector": CostCurve(terms=("pow2q_q", "1"), coefficients=(1e-8, 1e-5)),
            "stabilizer": CostCurve(terms=("q3", "q2", "1"), coefficients=(1e-7, 0.0, 1e-4)),
        },
        tuning={"tile_entries": float(1 << 22)},
    )
    fields.update(overrides)
    return MachineProfile(**fields)


class TestFitting:
    def test_fit_recovers_known_coefficients(self):
        rows = [
            {"n": n, "w": w}
            for n in (1_000, 2_000, 4_000, 8_000)
            for w in (1, 2, 5, 10)
        ]
        seconds = [2e-9 * r["n"] ** 2 * r["w"] + 5e-6 * r["n"] + 1e-3 for r in rows]
        curve = fit_cost_curve(("n2w", "n", "1"), rows, seconds)
        for row, expected in zip(rows, seconds):
            assert curve.predict(**row) == pytest.approx(expected, rel=1e-3)

    def test_fit_never_produces_negative_coefficients(self):
        rows = [{"n": n, "w": 1} for n in (100, 200, 400, 800)]
        # Concave-ish data that a plain lstsq would fit with a negative
        # quadratic term.
        seconds = [1e-5 * n for n in (100, 200, 390, 760)]
        curve = fit_cost_curve(("n2w", "n", "1"), rows, seconds)
        assert all(coefficient >= 0.0 for coefficient in curve.coefficients)
        assert curve.predict(n=10_000, w=1) >= 0.0

    def test_fit_validates_shapes(self):
        with pytest.raises(CostModelError, match="feature rows"):
            fit_cost_curve(("n", "1"), [{"n": 1}], [0.1, 0.2])
        with pytest.raises(CostModelError, match="cannot fit"):
            fit_cost_curve(("n", "1"), [{"n": 1}], [0.1])

    def test_curve_rejects_unknown_terms_and_shape_mismatch(self):
        with pytest.raises(CostModelError, match="unknown cost term"):
            CostCurve(terms=("banana",), coefficients=(1.0,))
        with pytest.raises(CostModelError, match="terms but"):
            CostCurve(terms=("n", "1"), coefficients=(1.0,))


class TestPersistence:
    def test_json_round_trip_preserves_fingerprint(self, tmp_path):
        profile = _profile()
        path = save_profile(profile, tmp_path / "profile.json")
        loaded = load_profile(path)
        assert loaded is not None
        assert loaded.fingerprint() == profile.fingerprint()
        assert loaded.to_json() == profile.to_json()

    def test_serialization_is_stable(self):
        profile = _profile()
        assert profile.to_json() == profile.to_json()
        # Insertion order must not leak into the artifact.
        reordered = _profile(
            kernels={
                "streaming": _kernel_curve(2e-9),
                "tiled": _kernel_curve(1e-9),
            }
        )
        assert reordered.to_json() == profile.to_json()

    def test_missing_file_is_silent_none(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert load_profile(tmp_path / "absent.json") is None

    def test_version_mismatch_warns_and_falls_back(self, tmp_path):
        payload = json.loads(_profile().to_json())
        payload["version"] = 999
        path = tmp_path / "future.json"
        path.write_text(json.dumps(payload))
        with pytest.warns(UserWarning, match="version"):
            assert load_profile(path) is None
        with pytest.raises(CostModelError, match="version"):
            MachineProfile.from_dict(payload)

    def test_corrupt_file_warns_and_falls_back(self, tmp_path):
        path = tmp_path / "corrupt.json"
        path.write_text("{not json")
        with pytest.warns(UserWarning, match="falling back"):
            assert load_profile(path) is None

    def test_profile_path_env_precedence(self, monkeypatch):
        for disabled in ("off", "none", "disabled", "", "  OFF "):
            monkeypatch.setenv(costmodel.ENV_PROFILE, disabled)
            assert profile_path() is None
        monkeypatch.setenv(costmodel.ENV_PROFILE, "/tmp/somewhere.json")
        assert str(profile_path()) == "/tmp/somewhere.json"
        monkeypatch.delenv(costmodel.ENV_PROFILE)
        default = profile_path()
        assert default is not None and default.name == "machine_profile.json"

    def test_active_profile_loads_from_env_path(self, tmp_path, monkeypatch):
        path = save_profile(_profile(), tmp_path / "profile.json")
        monkeypatch.setenv(costmodel.ENV_PROFILE, str(path))
        costmodel.reset_active_profile()
        active = costmodel.active_profile()
        assert active is not None
        assert costmodel.active_fingerprint() == active.fingerprint()
        # The cached result survives env changes until an explicit reset.
        monkeypatch.setenv(costmodel.ENV_PROFILE, "off")
        assert costmodel.active_profile() is active
        costmodel.reset_active_profile()
        assert costmodel.active_profile() is None


class TestDecisions:
    def test_kernel_plan_ranks_tunable_plans_only(self):
        profile = _profile()
        assert profile.kernel_plan(5_000, 16) == "tiled"
        slower_tiled = _profile(
            kernels={"tiled": _kernel_curve(9e-9), "streaming": _kernel_curve(2e-9)}
        )
        assert slower_tiled.kernel_plan(5_000, 16) == "streaming"
        assert _profile(kernels={}).kernel_plan(5_000, 16) is None

    def test_shard_layout_thresholds(self):
        profile = _profile()
        assert profile.shard_layout(1_000) is None
        assert profile.shard_layout(2_048) is None
        assert profile.shard_layout(8_192) == 2_048
        assert _profile(shard={}).shard_layout(10**9) is None

    def test_effective_workers_break_even(self):
        profile = _profile()
        assert profile.effective_workers(0.001, 4) == 1
        assert profile.effective_workers(1.0, 4) == 4
        assert profile.effective_workers(None, 4) == 4
        assert profile.effective_workers(0.001, 1) == 1
        assert _profile(engine={}).effective_workers(0.001, 4) == 4

    def test_backend_choice_requires_full_ranking(self):
        profile = _profile()
        # At 4 qubits the stabilizer cubic beats the statevector exponential
        # only when the constants say so; just assert the argmin is honoured.
        choice = profile.backend_choice(("stabilizer", "statevector"), qubits=20, gates=40)
        assert choice == "stabilizer"
        partial = _profile(backends={"stabilizer": _profile().backends["stabilizer"]})
        assert partial.backend_choice(("stabilizer", "statevector"), 20, 40) is None

    def test_decision_counters(self):
        costmodel.record_decision("kernel", "tiled", "profile")
        costmodel.record_decision("kernel", "tiled", "profile")
        costmodel.record_decision("backend", "stabilizer", "heuristic")
        assert costmodel.decision_counts() == {
            "kernel": {"tiled/profile": 2},
            "backend": {"stabilizer/heuristic": 1},
        }
        costmodel.reset_decisions()
        assert costmodel.decision_counts() == {}


class TestChoosePlanPrecedence:
    def test_heuristic_without_profile(self):
        assert choose_plan(DENSE_SUPPORT_MAX, 16) == "dense"
        assert choose_plan(5_000, 16) == "tiled"
        assert choose_plan(5_000, 640) == "streaming"
        counts = costmodel.decision_counts()["kernel"]
        assert counts["dense/heuristic"] == 1
        assert counts["tiled/heuristic"] == 1
        assert counts["streaming/heuristic"] == 1

    def test_profile_beats_heuristic(self):
        costmodel.set_active_profile(
            _profile(
                kernels={"tiled": _kernel_curve(9e-9), "streaming": _kernel_curve(2e-9)}
            )
        )
        assert choose_plan(5_000, 16) == "streaming"
        assert costmodel.decision_counts()["kernel"] == {"streaming/profile": 1}

    def test_env_override_beats_profile(self, monkeypatch):
        costmodel.set_active_profile(_profile())
        monkeypatch.setenv("REPRO_HAMMER_KERNEL", "legacy")
        assert choose_plan(5_000, 16) == "legacy"
        assert costmodel.decision_counts()["kernel"] == {"legacy/override": 1}

    def test_dense_boundary_immune_to_profile(self):
        # Supports at or below DENSE_SUPPORT_MAX hold the golden fixtures;
        # no profile may reroute them.
        costmodel.set_active_profile(
            _profile(
                kernels={"tiled": _kernel_curve(9e-9), "streaming": _kernel_curve(1e-12)}
            )
        )
        assert choose_plan(DENSE_SUPPORT_MAX, 16) == "dense"
        assert costmodel.decision_counts()["kernel"] == {"dense/heuristic": 1}


class TestTileEntriesPrecedence:
    def test_profile_beats_cache_default(self):
        untuned = tuning.tile_entries()
        costmodel.set_active_profile(_profile(tuning={"tile_entries": float(1 << 23)}))
        assert tuning.tile_entries() == 1 << 23
        costmodel.set_active_profile(None)
        assert tuning.tile_entries() == untuned

    def test_env_beats_profile_and_clamp_applies_last(self, monkeypatch):
        costmodel.set_active_profile(_profile(tuning={"tile_entries": float(1 << 23)}))
        monkeypatch.setenv("REPRO_TILE_ENTRIES", str(1 << 21))
        assert tuning.tile_entries() == 1 << 21
        monkeypatch.delenv("REPRO_TILE_ENTRIES")
        costmodel.set_active_profile(_profile(tuning={"tile_entries": float(1 << 30)}))
        assert tuning.tile_entries() == 1 << 23  # clamped to the sane maximum

    def test_tuning_report_carries_fingerprint(self):
        assert tuning.tuning_report()["machine_profile"] == "untuned"
        profile = _profile()
        costmodel.set_active_profile(profile)
        assert tuning.tuning_report()["machine_profile"] == profile.fingerprint()
