"""Property suite for the shape-adaptive pairwise Hamming kernels (PR 5).

Every kernel plan — the bit-stable ``dense``/``legacy`` arithmetic, the
symmetric ``tiled`` sweep and the fused ``streaming`` traversal — must agree
with ``hammer_reference`` (the paper's Algorithm 1, pure-Python loops) on
arbitrary supports, including word-boundary widths (63/64/65) and degenerate
single-outcome distributions.  The popcount dispatch, the shape dispatcher
and the environment overrides of the tuning layer are covered here too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Distribution, HammerConfig, hammer, hammer_reference
from repro.core import tuning
from repro.core.kernels import (
    DENSE_SUPPORT_MAX,
    STREAMING_MIN_WORDS,
    _popcount_lut_u64,
    choose_plan,
    chs_histogram,
    has_fast_popcount,
    hammer_pass,
    popcount_u64,
)
from repro.core.spectrum import average_chs
from repro.core.bitstring import pairwise_block_size
from repro.exceptions import DistributionError

ALL_PLANS = ("dense", "tiled", "streaming", "legacy")


@pytest.fixture(autouse=True)
def _reset_kernel_override():
    yield
    tuning.set_kernel_override(None)


def _force(plan):
    tuning.set_kernel_override(plan)


@st.composite
def kernel_distributions(draw):
    """Random supports biased toward the word-boundary widths 63/64/65."""
    num_bits = draw(
        st.one_of(
            st.sampled_from([63, 64, 65]),
            st.integers(min_value=1, max_value=70),
        )
    )
    seed = draw(st.integers(min_value=0, max_value=2**31))
    size = draw(st.integers(min_value=1, max_value=28))
    rng = np.random.default_rng(seed)
    bits = np.unique(rng.integers(0, 2, size=(size, num_bits), dtype=np.uint8), axis=0)
    strings = ["".join("1" if b else "0" for b in row) for row in bits]
    weights = draw(
        st.lists(
            st.floats(min_value=0.01, max_value=10.0),
            min_size=len(strings),
            max_size=len(strings),
        )
    )
    return Distribution(dict(zip(strings, weights)), num_bits=num_bits)


class TestKernelEquivalence:
    @given(kernel_distributions(), st.booleans(), st.booleans())
    @settings(max_examples=60, deadline=None)
    def test_all_plans_match_reference(self, dist, use_filter, include_self):
        config = HammerConfig(use_filter=use_filter, include_self_probability=include_self)
        reference = hammer_reference(dist, config)
        for plan in ALL_PLANS:
            _force(plan)
            reconstructed = hammer(dist, config)
            for outcome, probability in reference.probabilities().items():
                assert reconstructed.probability(outcome) == pytest.approx(
                    probability, abs=1e-9
                ), (plan, outcome)

    @given(kernel_distributions())
    @settings(max_examples=40, deadline=None)
    def test_chs_plans_agree(self, dist):
        packed = dist.packed()
        expected = chs_histogram(packed, packed.probabilities, dist.num_bits, plan="legacy")
        for plan in ("dense", "tiled", "streaming"):
            got = chs_histogram(packed, packed.probabilities, dist.num_bits, plan=plan)
            assert np.allclose(got, expected, atol=1e-9), plan

    @pytest.mark.parametrize("plan", ALL_PLANS)
    def test_single_outcome_distribution(self, plan):
        _force(plan)
        dist = Distribution.point_mass("0" * 65)
        assert hammer(dist).probability("0" * 65) == pytest.approx(1.0)

    @pytest.mark.parametrize("width", [63, 64, 65])
    def test_word_boundary_widths_large_support(self, width):
        """The symmetric kernels agree with legacy across the uint64 seam."""
        rng = np.random.default_rng(width)
        center = rng.integers(0, 2, size=width, dtype=np.uint8)
        bits = np.unique(
            (rng.random((4000, width)) < 0.2).astype(np.uint8) ^ center, axis=0
        )
        strings = ["".join("1" if b else "0" for b in row) for row in bits]
        weights = rng.random(len(strings)) + 0.01
        dist = Distribution(dict(zip(strings, weights)), num_bits=width)
        _force("legacy")
        expected = hammer(dist)
        for plan in ("tiled", "streaming"):
            _force(plan)
            got = hammer(dist)
            for outcome in expected.probabilities():
                assert got.probability(outcome) == pytest.approx(
                    expected.probability(outcome), abs=1e-9
                ), plan

    def test_unknown_plan_rejected(self):
        dist = Distribution({"01": 1.0, "10": 1.0})
        packed = dist.packed()
        with pytest.raises(DistributionError):
            hammer_pass(packed, packed.probabilities, 1, lambda chs: chs, True, plan="nope")
        with pytest.raises(DistributionError):
            chs_histogram(packed, packed.probabilities, 1, plan="legcay")


class TestPopcountDispatch:
    def test_lut_matches_native(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 2**63, size=(257,), dtype=np.uint64)
        values[:3] = (0, 1, np.iinfo(np.uint64).max)
        expected = np.array([bin(int(v)).count("1") for v in values], dtype=np.uint8)
        assert np.array_equal(_popcount_lut_u64(values), expected)
        assert np.array_equal(popcount_u64(values), expected)

    def test_lut_handles_2d_and_noncontiguous(self):
        rng = np.random.default_rng(4)
        values = rng.integers(0, 2**63, size=(8, 6), dtype=np.uint64)
        assert np.array_equal(_popcount_lut_u64(values.T), popcount_u64(values.T))

    def test_fast_popcount_reports_numpy2(self):
        assert has_fast_popcount() == hasattr(np, "bitwise_count")


class TestDispatcher:
    def test_small_supports_stay_on_dense(self):
        assert choose_plan(DENSE_SUPPORT_MAX, 12) == "dense"
        assert choose_plan(1, 127) == "dense"

    def test_large_supports_tile(self):
        assert choose_plan(DENSE_SUPPORT_MAX + 1, 12) == "tiled"
        assert choose_plan(50_000, 127) == "tiled"

    def test_very_wide_registers_stream(self):
        wide = 64 * STREAMING_MIN_WORDS
        assert choose_plan(5_000, wide) == "streaming"
        assert choose_plan(5_000, wide - 64) == "tiled"

    def test_override_wins(self):
        _force("streaming")
        assert choose_plan(2, 2) == "streaming"

    def test_hammer_result_reports_plan(self):
        from repro.core.hammer import neighborhood_scores

        small = Distribution({"01": 1.0, "10": 2.0})
        assert neighborhood_scores(small).kernel == "dense"
        _force("tiled")
        assert neighborhood_scores(small).kernel == "tiled"


class TestTuningOverrides:
    def test_block_entries_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAIRWISE_BLOCK_ENTRIES", str(1 << 20))
        assert tuning.pairwise_block_entries() == 1 << 20
        assert pairwise_block_size(2048) == (1 << 20) // 2048

    def test_block_entries_default_is_historical(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAIRWISE_BLOCK_ENTRIES", raising=False)
        assert tuning.pairwise_block_entries() == 4_000_000
        assert pairwise_block_size(100) == 100

    def test_block_entries_rejects_garbage(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAIRWISE_BLOCK_ENTRIES", "many")
        with pytest.raises(DistributionError):
            tuning.pairwise_block_entries()
        monkeypatch.setenv("REPRO_PAIRWISE_BLOCK_ENTRIES", "-3")
        with pytest.raises(DistributionError):
            tuning.pairwise_block_entries()

    def test_tile_entries_env_override_and_clamp(self, monkeypatch):
        monkeypatch.setenv("REPRO_TILE_ENTRIES", str(1 << 22))
        assert tuning.tile_entries() == 1 << 22
        monkeypatch.setenv("REPRO_TILE_ENTRIES", "1")
        assert tuning.tile_entries() == 1 << 20  # clamped to the minimum

    def test_tile_shape_is_deterministic_and_bounded(self):
        rows, cols = tuning.tile_shape(100_000)
        assert (rows, cols) == tuning.tile_shape(100_000)
        assert rows * cols <= 2 * tuning.tile_entries()
        small_rows, small_cols = tuning.tile_shape(10)
        assert small_rows == 10 and small_cols == 10

    def test_kernel_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_HAMMER_KERNEL", "legacy")
        assert tuning.kernel_override() == "legacy"
        monkeypatch.setenv("REPRO_HAMMER_KERNEL", "auto")
        assert tuning.kernel_override() is None
        monkeypatch.setenv("REPRO_HAMMER_KERNEL", "warp")
        with pytest.raises(DistributionError):
            tuning.kernel_override()

    def test_set_kernel_override_validates(self):
        with pytest.raises(DistributionError):
            tuning.set_kernel_override("warp")

    def test_tuning_report_shape(self):
        report = tuning.tuning_report()
        assert set(report) == {
            "cache_bytes",
            "pairwise_block_entries",
            "tile_entries",
            "kernel_override",
            "machine_profile",
        }
        assert report["kernel_override"] == "auto"


class TestAverageChsRoutesThroughKernels:
    @pytest.mark.parametrize("plan", ALL_PLANS)
    def test_average_chs_stable_across_plans(self, plan):
        rng = np.random.default_rng(9)
        bits = np.unique(rng.integers(0, 2, size=(300, 65), dtype=np.uint8), axis=0)
        strings = ["".join("1" if b else "0" for b in row) for row in bits]
        dist = Distribution(
            dict(zip(strings, rng.random(len(strings)) + 0.01)), num_bits=65
        )
        expected = average_chs(dist)
        _force(plan)
        assert np.allclose(average_chs(dist), expected, atol=1e-9)


class TestGpuTier:
    """The optional CuPy tier: graceful degradation everywhere, exact on-device.

    Only the final class is ``gpu``-marked; the fallback contract must hold
    (and is exercised) on machines with no CUDA device at all.
    """

    def test_gpu_plan_name_is_registered(self):
        assert "gpu" in tuning.KERNEL_PLANS
        tuning.set_kernel_override("gpu")
        assert tuning.kernel_override() == "gpu"

    def test_gpu_env_override_accepted(self, monkeypatch):
        monkeypatch.setenv("REPRO_HAMMER_KERNEL", "gpu")
        assert tuning.kernel_override() == "gpu"

    def test_fallback_without_device_is_bit_identical_to_tiled(self):
        import warnings

        from repro.core import kernels

        if kernels.gpu_available():
            pytest.skip("CUDA device present: fallback path not reachable")
        rng = np.random.default_rng(11)
        bits = np.unique(rng.integers(0, 2, size=(1400, 70), dtype=np.uint8), axis=0)
        strings = ["".join("1" if b else "0" for b in row) for row in bits]
        dist = Distribution(
            dict(zip(strings, rng.random(len(strings)) + 0.01)), num_bits=70
        )
        packed = dist.packed()
        probs = dist.probability_vector()
        weight_fn = lambda chs: np.where(chs > 0, 1.0 / np.maximum(chs, 1e-12), 0.0)  # noqa: E731
        reference = kernels.hammer_pass(packed, probs, 5, weight_fn, True, plan="tiled")
        kernels._GPU_STATE["warned"] = False
        with pytest.warns(RuntimeWarning, match="falling back"):
            degraded = kernels.hammer_pass(packed, probs, 5, weight_fn, True, plan="gpu")
        assert degraded[3] == "tiled"  # provenance records where it actually ran
        for ref, got in zip(reference[:3], degraded[:3]):
            assert np.array_equal(ref, got)
        # The warning fires once per process, not once per call.
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            kernels.chs_histogram(packed, probs, 5, plan="gpu")
        assert not caught

    def test_dispatcher_never_picks_gpu_without_device(self):
        from repro.core import kernels

        if kernels.gpu_available():
            pytest.skip("CUDA device present")
        assert choose_plan(DENSE_SUPPORT_MAX + 1, 12) != "gpu"

    @pytest.mark.gpu
    def test_gpu_distances_bit_identical_to_cpu(self):
        from repro.core import kernels

        rng = np.random.default_rng(13)
        for num_words in (1, 2, 3):
            words_a = rng.integers(0, 2**63, size=(97, num_words), dtype=np.uint64)
            words_b = rng.integers(0, 2**63, size=(53, num_words), dtype=np.uint64)
            cpu = kernels._tile_distances(words_a, words_b)
            gpu = kernels._tile_distances_gpu(words_a, words_b)
            assert cpu.dtype == gpu.dtype
            assert np.array_equal(cpu, gpu)

    @pytest.mark.gpu
    def test_gpu_plan_bit_identical_to_tiled(self):
        from repro.core import kernels

        rng = np.random.default_rng(17)
        bits = np.unique(rng.integers(0, 2, size=(1400, 70), dtype=np.uint8), axis=0)
        strings = ["".join("1" if b else "0" for b in row) for row in bits]
        dist = Distribution(
            dict(zip(strings, rng.random(len(strings)) + 0.01)), num_bits=70
        )
        packed = dist.packed()
        probs = dist.probability_vector()
        weight_fn = lambda chs: np.where(chs > 0, 1.0 / np.maximum(chs, 1e-12), 0.0)  # noqa: E731
        tiled = kernels.hammer_pass(packed, probs, 5, weight_fn, True, plan="tiled")
        gpu = kernels.hammer_pass(packed, probs, 5, weight_fn, True, plan="gpu")
        assert gpu[3] == "gpu"
        for ref, got in zip(tiled[:3], gpu[:3]):
            assert np.array_equal(ref, got)

    def test_profile_gpu_ranking_ignored_without_device(self):
        from repro.core import costmodel, kernels

        if kernels.gpu_available():
            pytest.skip("CUDA device present")
        # A travelled profile tuned on a GPU box ranks gpu first; this
        # machine has no device, so the dispatcher must fall through.
        fast = costmodel.CostCurve(terms=("1",), coefficients=(1e-9,))
        slow = costmodel.CostCurve(terms=("1",), coefficients=(10.0,))
        profile = costmodel.MachineProfile(
            kernels={"gpu": fast, "tiled": slow, "streaming": slow}
        )
        costmodel.set_active_profile(profile)
        try:
            assert choose_plan(DENSE_SUPPORT_MAX + 1, 12) != "gpu"
        finally:
            costmodel.reset_active_profile()
