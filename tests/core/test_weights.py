"""Tests for per-distance weight schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import (
    ExponentialDecayWeights,
    InverseChsWeights,
    NearestNeighborWeights,
    UniformWeights,
    resolve_weight_scheme,
)
from repro.exceptions import DistributionError


@pytest.fixture
def chs_vector():
    return np.array([0.2, 0.4, 0.3, 0.1, 0.0])


class TestInverseChs:
    def test_inverts_nonzero_bins(self, chs_vector):
        weights = InverseChsWeights().compute(chs_vector, num_bits=4, cutoff=4)
        assert weights[0] == pytest.approx(1 / 0.2)
        assert weights[1] == pytest.approx(1 / 0.4)

    def test_zero_bins_stay_zero(self):
        weights = InverseChsWeights().compute(np.array([0.5, 0.0, 0.5]), num_bits=2, cutoff=3)
        assert weights[1] == 0.0

    def test_cutoff_zeroes_tail(self, chs_vector):
        weights = InverseChsWeights().compute(chs_vector, num_bits=4, cutoff=2)
        assert all(w == 0 for w in weights[2:])


class TestUniform:
    def test_all_ones_below_cutoff(self, chs_vector):
        weights = UniformWeights().compute(chs_vector, num_bits=4, cutoff=3)
        assert list(weights[:3]) == [1.0, 1.0, 1.0]
        assert list(weights[3:]) == [0.0, 0.0]


class TestExponentialDecay:
    def test_decay_shape(self, chs_vector):
        weights = ExponentialDecayWeights(decay=0.5).compute(chs_vector, num_bits=4, cutoff=4)
        assert weights[0] == pytest.approx(1.0)
        assert weights[1] == pytest.approx(0.5)
        assert weights[2] == pytest.approx(0.25)

    def test_rejects_bad_decay(self):
        with pytest.raises(DistributionError):
            ExponentialDecayWeights(decay=0.0)
        with pytest.raises(DistributionError):
            ExponentialDecayWeights(decay=1.5)


class TestNearestNeighbor:
    def test_only_first_two_bins(self, chs_vector):
        weights = NearestNeighborWeights().compute(chs_vector, num_bits=4, cutoff=4)
        assert weights[0] > 0
        assert weights[1] > 0
        assert all(w == 0 for w in weights[2:])


class TestResolution:
    def test_resolve_by_name(self):
        assert isinstance(resolve_weight_scheme("inverse_chs"), InverseChsWeights)
        assert isinstance(resolve_weight_scheme("uniform"), UniformWeights)

    def test_resolve_passthrough(self):
        scheme = UniformWeights()
        assert resolve_weight_scheme(scheme) is scheme

    def test_resolve_unknown_name(self):
        with pytest.raises(DistributionError):
            resolve_weight_scheme("does-not-exist")

    def test_resolve_bad_type(self):
        with pytest.raises(DistributionError):
            resolve_weight_scheme(42)  # type: ignore[arg-type]
