"""Tests for per-distance weight schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.weights import (
    ExponentialDecayWeights,
    InverseChsWeights,
    NearestNeighborWeights,
    NoiseAwareWeights,
    UniformWeights,
    resolve_weight_scheme,
)
from repro.exceptions import DistributionError


@pytest.fixture
def chs_vector():
    return np.array([0.2, 0.4, 0.3, 0.1, 0.0])


class TestInverseChs:
    def test_inverts_nonzero_bins(self, chs_vector):
        weights = InverseChsWeights().compute(chs_vector, num_bits=4, cutoff=4)
        assert weights[0] == pytest.approx(1 / 0.2)
        assert weights[1] == pytest.approx(1 / 0.4)

    def test_zero_bins_stay_zero(self):
        weights = InverseChsWeights().compute(np.array([0.5, 0.0, 0.5]), num_bits=2, cutoff=3)
        assert weights[1] == 0.0

    def test_cutoff_zeroes_tail(self, chs_vector):
        weights = InverseChsWeights().compute(chs_vector, num_bits=4, cutoff=2)
        assert all(w == 0 for w in weights[2:])


class TestUniform:
    def test_all_ones_below_cutoff(self, chs_vector):
        weights = UniformWeights().compute(chs_vector, num_bits=4, cutoff=3)
        assert list(weights[:3]) == [1.0, 1.0, 1.0]
        assert list(weights[3:]) == [0.0, 0.0]


class TestExponentialDecay:
    def test_decay_shape(self, chs_vector):
        weights = ExponentialDecayWeights(decay=0.5).compute(chs_vector, num_bits=4, cutoff=4)
        assert weights[0] == pytest.approx(1.0)
        assert weights[1] == pytest.approx(0.5)
        assert weights[2] == pytest.approx(0.25)

    def test_rejects_bad_decay(self):
        with pytest.raises(DistributionError):
            ExponentialDecayWeights(decay=0.0)
        with pytest.raises(DistributionError):
            ExponentialDecayWeights(decay=1.5)


class TestNearestNeighbor:
    def test_only_first_two_bins(self, chs_vector):
        weights = NearestNeighborWeights().compute(chs_vector, num_bits=4, cutoff=4)
        assert weights[0] > 0
        assert weights[1] > 0
        assert all(w == 0 for w in weights[2:])


class TestResolution:
    def test_resolve_by_name(self):
        assert isinstance(resolve_weight_scheme("inverse_chs"), InverseChsWeights)
        assert isinstance(resolve_weight_scheme("uniform"), UniformWeights)

    def test_resolve_passthrough(self):
        scheme = UniformWeights()
        assert resolve_weight_scheme(scheme) is scheme

    def test_resolve_unknown_name(self):
        with pytest.raises(DistributionError):
            resolve_weight_scheme("does-not-exist")

    def test_resolve_bad_type(self):
        with pytest.raises(DistributionError):
            resolve_weight_scheme(42)  # type: ignore[arg-type]


class TestNoiseAwareWeights:
    def test_pmf_is_a_distribution(self):
        pmf = NoiseAwareWeights.flip_distance_pmf([0.1, 0.2, 0.05, 0.3])
        assert pmf.shape == (5,)
        assert np.all(pmf >= 0)
        assert pmf.sum() == pytest.approx(1.0)

    def test_pmf_matches_binomial_for_uniform_rates(self):
        from math import comb

        p, n = 0.2, 6
        pmf = NoiseAwareWeights.flip_distance_pmf([p] * n)
        for k in range(n + 1):
            assert pmf[k] == pytest.approx(comb(n, k) * p**k * (1 - p) ** (n - k))

    def test_weights_invert_the_analytic_spectrum(self):
        scheme = NoiseAwareWeights([0.1, 0.1, 0.1, 0.1])
        chs = np.ones(5)
        weights = scheme.compute(chs, num_bits=4, cutoff=2)
        pmf = NoiseAwareWeights.flip_distance_pmf([0.1] * 4)
        assert weights[0] == pytest.approx(1.0 / pmf[0])
        assert weights[1] == pytest.approx(1.0 / pmf[1])
        assert np.all(weights[2:] == 0.0)

    def test_sensitive_to_which_qubit_is_bad(self):
        good = NoiseAwareWeights([0.01, 0.01, 0.3, 0.01])
        uniform = NoiseAwareWeights([0.0825] * 4)
        chs = np.ones(5)
        assert not np.allclose(
            good.compute(chs, 4, 3), uniform.compute(chs, 4, 3)
        )

    def test_from_noise_model_uses_accumulated_flips(self):
        from repro.circuits.bv import bernstein_vazirani
        from repro.quantum.device import ibm_paris

        circuit = bernstein_vazirani("1011")
        model = ibm_paris().noise_model
        scheme = NoiseAwareWeights.from_noise_model(model, circuit)
        expected = model.accumulated_bitflip_probabilities(circuit)
        assert np.allclose(scheme.flip_probabilities, expected)

    def test_registry_resolution_falls_back_to_inverse_chs(self):
        scheme = resolve_weight_scheme("noise_aware")
        assert isinstance(scheme, NoiseAwareWeights)
        chs = np.array([0.5, 0.25, 0.1, 0.0, 0.0])
        assert np.allclose(
            scheme.compute(chs, 4, 2), InverseChsWeights().compute(chs, 4, 2)
        )

    def test_equality_and_hash(self):
        a = NoiseAwareWeights([0.1, 0.2])
        b = NoiseAwareWeights([0.1, 0.2])
        c = NoiseAwareWeights([0.1, 0.3])
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_rejects_invalid_probabilities(self):
        with pytest.raises(DistributionError):
            NoiseAwareWeights([0.1, 1.5])
        with pytest.raises(DistributionError):
            NoiseAwareWeights([])

    def test_hammer_accepts_the_scheme(self):
        from repro.core.distribution import Distribution
        from repro.core.hammer import HammerConfig, hammer

        noisy = Distribution(
            {"0000": 30, "0001": 10, "0010": 8, "1000": 9, "1111": 20, "0111": 4}
        )
        config = HammerConfig(weight_scheme=NoiseAwareWeights([0.05, 0.1, 0.02, 0.08]))
        reconstructed = hammer(noisy, config)
        assert reconstructed.num_bits == 4
        assert abs(sum(reconstructed.probabilities().values()) - 1.0) < 1e-9
