"""Unit and property-based tests for the Distribution class."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Distribution
from repro.exceptions import DistributionError


def distributions(num_bits: int = 5, max_outcomes: int = 12):
    """Hypothesis strategy generating valid distributions."""
    outcome = st.integers(min_value=0, max_value=2**num_bits - 1).map(
        lambda v: format(v, f"0{num_bits}b")
    )
    return st.dictionaries(
        outcome, st.floats(min_value=0.01, max_value=100.0), min_size=1, max_size=max_outcomes
    ).map(lambda data: Distribution(data, num_bits=num_bits))


class TestConstruction:
    def test_from_counts(self):
        dist = Distribution.from_counts({"00": 25, "11": 75})
        assert dist.probability("11") == pytest.approx(0.75)
        assert dist.total_weight == 100

    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            Distribution({})

    def test_rejects_negative_weight(self):
        with pytest.raises(DistributionError):
            Distribution({"0": -1.0})

    def test_rejects_nan_weight(self):
        with pytest.raises(DistributionError):
            Distribution({"0": float("nan")})

    def test_rejects_zero_total(self):
        with pytest.raises(DistributionError):
            Distribution({"0": 0.0})

    def test_rejects_mixed_widths(self):
        with pytest.raises(DistributionError):
            Distribution({"00": 1.0, "000": 1.0})

    def test_from_samples(self):
        dist = Distribution.from_samples(["01", "01", "10", "01"])
        assert dist.probability("01") == pytest.approx(0.75)

    def test_from_samples_empty(self):
        with pytest.raises(DistributionError):
            Distribution.from_samples([])

    def test_from_statevector_probabilities(self):
        vector = np.array([0.5, 0.0, 0.0, 0.5])
        dist = Distribution.from_statevector_probabilities(vector, 2)
        assert set(dist.outcomes()) == {"00", "11"}

    def test_from_statevector_rejects_wrong_length(self):
        with pytest.raises(DistributionError):
            Distribution.from_statevector_probabilities(np.ones(3), 2)

    def test_uniform(self):
        dist = Distribution.uniform(3)
        assert dist.num_outcomes == 8
        assert dist.probability("101") == pytest.approx(1 / 8)

    def test_point_mass(self):
        dist = Distribution.point_mass("0110")
        assert dist.probability("0110") == 1.0
        assert dist.num_outcomes == 1


class TestQueries:
    def test_most_probable(self):
        dist = Distribution({"00": 1, "01": 5, "11": 5})
        assert dist.most_probable() == "01"  # lexicographic tie-break

    def test_ranked_outcomes(self):
        dist = Distribution({"00": 1, "01": 3, "11": 6})
        assert [o for o, _ in dist.ranked_outcomes()] == ["11", "01", "00"]

    def test_entropy_uniform(self):
        assert Distribution.uniform(4).entropy() == pytest.approx(4.0)

    def test_entropy_point_mass(self):
        assert Distribution.point_mass("0101").entropy() == pytest.approx(0.0)

    def test_expectation(self):
        dist = Distribution({"0": 0.5, "1": 0.5})
        assert dist.expectation(lambda s: 1.0 if s == "1" else -1.0) == pytest.approx(0.0)

    def test_hamming_distances_to(self):
        dist = Distribution({"000": 1, "011": 1, "111": 2})
        distances = dist.hamming_distances_to("000")
        assert sorted(distances.tolist()) == [0, 2, 3]

    @given(distributions())
    def test_probabilities_sum_to_one(self, dist):
        assert sum(dist.probabilities().values()) == pytest.approx(1.0)

    @given(distributions())
    def test_probability_of_absent_outcome_is_default(self, dist):
        assert dist.probability("1" * dist.num_bits + "", default=0.0) >= 0.0


class TestTransformations:
    def test_normalized(self):
        dist = Distribution({"0": 2, "1": 6}).normalized()
        assert dist.probability("1") == pytest.approx(0.75)
        assert dist.total_weight == pytest.approx(1.0)

    def test_top_k(self):
        dist = Distribution({"00": 1, "01": 2, "10": 3, "11": 4})
        top = dist.top_k(2)
        assert set(top.outcomes()) == {"11", "10"}

    def test_top_k_rejects_nonpositive(self):
        with pytest.raises(DistributionError):
            Distribution({"0": 1.0}).top_k(0)

    def test_filtered_keeps_argmax(self):
        dist = Distribution({"00": 1, "01": 1, "10": 98})
        filtered = dist.filtered(min_probability=0.5)
        assert filtered.outcomes() == ["10"]

    def test_merged_with(self):
        a = Distribution({"0": 1.0})
        b = Distribution({"1": 1.0})
        merged = a.merged_with(b, weight=0.25)
        assert merged.probability("0") == pytest.approx(0.25)
        assert merged.probability("1") == pytest.approx(0.75)

    def test_merged_with_rejects_width_mismatch(self):
        with pytest.raises(DistributionError):
            Distribution({"0": 1.0}).merged_with(Distribution({"00": 1.0}))

    def test_mapped_permutation(self):
        dist = Distribution({"011": 1.0})
        remapped = dist.mapped([2, 1, 0])
        assert remapped.outcomes() == ["110"]

    def test_mapped_rejects_bad_permutation(self):
        with pytest.raises(DistributionError):
            Distribution({"01": 1.0}).mapped([0, 0])

    def test_marginal(self):
        dist = Distribution({"00": 0.25, "01": 0.25, "10": 0.25, "11": 0.25})
        marginal = dist.marginal([0])
        assert marginal.probability("0") == pytest.approx(0.5)
        assert marginal.probability("1") == pytest.approx(0.5)

    def test_marginal_rejects_bad_positions(self):
        with pytest.raises(DistributionError):
            Distribution({"01": 1.0}).marginal([3])

    def test_to_dense(self):
        dense = Distribution({"01": 1.0, "10": 3.0}).to_dense()
        assert dense[1] == pytest.approx(0.25)
        assert dense[2] == pytest.approx(0.75)


class TestSampling:
    def test_sample_reproducible(self):
        dist = Distribution({"00": 0.5, "11": 0.5})
        samples_a = dist.sample(50, rng=np.random.default_rng(1))
        samples_b = dist.sample(50, rng=np.random.default_rng(1))
        assert samples_a == samples_b
        assert set(samples_a) <= {"00", "11"}

    def test_sample_rejects_nonpositive(self):
        with pytest.raises(DistributionError):
            Distribution({"0": 1.0}).sample(0)

    def test_resampled_total(self):
        dist = Distribution({"00": 0.3, "11": 0.7})
        resampled = dist.resampled(1000, rng=np.random.default_rng(2))
        assert resampled.total_weight == pytest.approx(1000)

    @given(distributions(), st.integers(min_value=100, max_value=2000))
    @settings(max_examples=20)
    def test_resampled_is_valid_distribution(self, dist, shots):
        resampled = dist.resampled(shots, rng=np.random.default_rng(0))
        assert math.isclose(sum(resampled.probabilities().values()), 1.0, rel_tol=1e-9)
        assert set(resampled.outcomes()) <= set(dist.outcomes())


class TestEquality:
    def test_equality_ignores_scale(self):
        assert Distribution({"0": 1, "1": 3}) == Distribution({"0": 0.25, "1": 0.75})

    def test_inequality_different_support(self):
        assert Distribution({"0": 1.0}) != Distribution({"1": 1.0})

    def test_inequality_different_width(self):
        assert Distribution({"0": 1.0}) != Distribution({"00": 1.0})
