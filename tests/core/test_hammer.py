"""Tests for the HAMMER algorithm: paper examples, invariants, equivalence."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Distribution,
    HammerConfig,
    hammer,
    hammer_reference,
    neighborhood_scores,
    variants,
)
from repro.exceptions import DistributionError


def clustered_distribution(num_bits: int, rng: np.random.Generator, support: int = 20) -> Distribution:
    """A noisy histogram clustered around a random correct outcome."""
    correct = "".join(rng.choice(["0", "1"]) for _ in range(num_bits))
    data = {correct: 0.15}
    while len(data) < support:
        distance = int(min(num_bits, rng.geometric(0.4)))
        positions = rng.choice(num_bits, size=distance, replace=False)
        outcome = list(correct)
        for position in positions:
            outcome[position] = "1" if outcome[position] == "0" else "0"
        data["".join(outcome)] = data.get("".join(outcome), 0.0) + float(rng.random() * 0.6 ** distance + 0.001)
    return Distribution(data, num_bits=num_bits)


def random_distributions(num_bits: int = 6, max_outcomes: int = 15):
    outcome = st.integers(min_value=0, max_value=2**num_bits - 1).map(
        lambda v: format(v, f"0{num_bits}b")
    )
    return st.dictionaries(
        outcome, st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=max_outcomes
    ).map(lambda data: Distribution(data, num_bits=num_bits))


class TestPaperExample:
    """Figure 6's 3-qubit illustrative distribution (used for reference-equivalence)."""

    def setup_method(self):
        self.noisy = Distribution(
            {"111": 0.30, "101": 0.40, "110": 0.05, "011": 0.10, "010": 0.10, "001": 0.05}
        )

    def test_baseline_argmax_is_wrong(self):
        assert self.noisy.most_probable() == "101"

    def test_output_is_normalised(self):
        corrected = hammer(self.noisy)
        assert sum(corrected.probabilities().values()) == pytest.approx(1.0)

    def test_reference_agrees_with_vectorized(self):
        corrected = hammer(self.noisy)
        reference = hammer_reference(self.noisy)
        for outcome in self.noisy.outcomes():
            assert corrected.probability(outcome) == pytest.approx(
                reference.probability(outcome), abs=1e-12
            )


class TestFlagshipFlip:
    """HAMMER's core promise: a clustered correct answer overtakes an isolated wrong one."""

    def test_three_qubit_flip(self):
        noisy = Distribution(
            {"111": 0.20, "000": 0.25, "011": 0.15, "101": 0.15, "110": 0.15, "001": 0.10}
        )
        assert noisy.most_probable() == "000"
        corrected = hammer(noisy)
        assert corrected.most_probable() == "111"
        assert corrected.probability("111") > noisy.probability("111")

    def test_eight_qubit_flip(self):
        correct = "11111111"
        data = {correct: 0.12, "00000000": 0.16}
        for position in range(8):
            neighbor = list(correct)
            neighbor[position] = "0"
            data["".join(neighbor)] = 0.05
        for first, second in [(0, 1), (2, 3), (4, 5), (6, 7), (1, 2)]:
            neighbor = list(correct)
            neighbor[first] = "0"
            neighbor[second] = "0"
            data["".join(neighbor)] = 0.02
        noisy = Distribution(data)
        assert noisy.most_probable() == "00000000"
        corrected = hammer(noisy)
        assert corrected.most_probable() == correct
        assert corrected.probability(correct) > 2 * noisy.probability(correct)


class TestInvariants:
    @given(random_distributions())
    @settings(max_examples=30, deadline=None)
    def test_output_is_valid_distribution(self, dist):
        corrected = hammer(dist)
        assert sum(corrected.probabilities().values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in corrected.probabilities().values())

    @given(random_distributions())
    @settings(max_examples=30, deadline=None)
    def test_support_is_preserved(self, dist):
        corrected = hammer(dist)
        assert set(corrected.outcomes()) == set(dist.outcomes())

    @given(random_distributions())
    @settings(max_examples=25, deadline=None)
    def test_vectorized_matches_reference(self, dist):
        vectorized = hammer(dist)
        reference = hammer_reference(dist)
        for outcome in dist.outcomes():
            assert vectorized.probability(outcome) == pytest.approx(
                reference.probability(outcome), abs=1e-9
            )

    @given(random_distributions(), st.sampled_from(["no_filter", "uniform_weights", "no_self_term"]))
    @settings(max_examples=15, deadline=None)
    def test_variants_match_reference(self, dist, variant_name):
        config = getattr(variants, variant_name)()
        vectorized = hammer(dist, config)
        reference = hammer_reference(dist, config)
        for outcome in dist.outcomes():
            assert vectorized.probability(outcome) == pytest.approx(
                reference.probability(outcome), abs=1e-9
            )

    def test_single_outcome_distribution_is_unchanged(self):
        dist = Distribution({"0101": 1.0})
        assert hammer(dist).probability("0101") == pytest.approx(1.0)

    def test_idempotent_support(self):
        rng = np.random.default_rng(3)
        dist = clustered_distribution(8, rng)
        once = hammer(dist)
        twice = hammer(once)
        assert set(twice.outcomes()) == set(dist.outcomes())


class TestEffectiveness:
    def test_clustered_correct_outcome_overtakes_isolated_spurious_one(self):
        """The paper's core claim on synthetic histograms with a tight error cluster.

        The correct outcome has a rich distance-1/2 neighbourhood; the spurious
        outcome is its bitwise complement (distance ``n``, i.e. far outside the
        HAMMER cutoff) and slightly more probable in the raw histogram.
        """
        rng = np.random.default_rng(11)
        for trial in range(5):
            num_bits = 10
            correct = "".join(rng.choice(["0", "1"]) for _ in range(num_bits))
            spurious = "".join("1" if bit == "0" else "0" for bit in correct)
            data = {correct: 0.10, spurious: 0.13}
            for position in range(num_bits):
                neighbor = list(correct)
                neighbor[position] = "1" if neighbor[position] == "0" else "0"
                data["".join(neighbor)] = float(rng.uniform(0.02, 0.05))
            for _ in range(8):
                positions = rng.choice(num_bits, size=2, replace=False)
                neighbor = list(correct)
                for position in positions:
                    neighbor[position] = "1" if neighbor[position] == "0" else "0"
                key = "".join(neighbor)
                data[key] = data.get(key, 0.0) + float(rng.uniform(0.005, 0.02))
            noisy = Distribution(data, num_bits=num_bits)
            assert noisy.most_probable() == spurious
            corrected = hammer(noisy)
            assert corrected.most_probable() == correct, f"trial {trial} did not flip"
            gap_before = noisy.probability(correct) / noisy.probability(spurious)
            gap_after = corrected.probability(correct) / corrected.probability(spurious)
            assert gap_after > gap_before


class TestConfig:
    def test_resolved_cutoff_default(self):
        assert HammerConfig().resolved_cutoff(10) == 5

    def test_resolved_cutoff_explicit(self):
        assert HammerConfig(neighborhood_cutoff=3).resolved_cutoff(10) == 3

    def test_resolved_cutoff_rejects_negative(self):
        with pytest.raises(DistributionError):
            HammerConfig(neighborhood_cutoff=-1).resolved_cutoff(10)

    def test_weight_scheme_by_name(self):
        config = HammerConfig(weight_scheme="uniform")
        corrected = hammer(Distribution({"00": 0.6, "01": 0.4}), config)
        assert sum(corrected.probabilities().values()) == pytest.approx(1.0)

    def test_unknown_weight_scheme_rejected(self):
        with pytest.raises(DistributionError):
            hammer(Distribution({"00": 0.6, "01": 0.4}), HammerConfig(weight_scheme="bogus"))


class TestNeighborhoodScores:
    def test_result_exposes_intermediates(self):
        dist = Distribution({"000": 0.4, "001": 0.3, "011": 0.2, "111": 0.1})
        result = neighborhood_scores(dist)
        assert result.num_bits == 3
        assert len(result.weights) >= 2
        assert set(result.scores) == set(dist.outcomes())
        assert result.config.use_filter is True

    def test_weights_zero_beyond_cutoff(self):
        dist = Distribution({"0000": 0.4, "0001": 0.3, "0011": 0.2, "1111": 0.1})
        result = neighborhood_scores(dist)
        cutoff = result.config.resolved_cutoff(4)
        assert all(w == 0 for w in result.weights[cutoff:])

    def test_filter_limits_credit(self):
        """With the filter, a low-probability outcome gets no credit from richer neighbours."""
        dist = Distribution({"000": 0.55, "001": 0.40, "011": 0.05})
        with_filter = neighborhood_scores(dist, HammerConfig(use_filter=True))
        without_filter = neighborhood_scores(dist, HammerConfig(use_filter=False))
        assert with_filter.scores["011"] <= without_filter.scores["011"]
