"""Tests for post-processing pipelines."""

from __future__ import annotations

import pytest

from repro.core import (
    CallableStage,
    Distribution,
    HammerStage,
    IdentityStage,
    PostProcessingPipeline,
    TruncationStage,
)
from repro.exceptions import DistributionError


@pytest.fixture
def noisy():
    # "111" is the Hamming-clustered correct answer; "000" the isolated spurious argmax.
    return Distribution(
        {"111": 0.20, "000": 0.25, "011": 0.15, "101": 0.15, "110": 0.15, "001": 0.10}
    )


class TestStages:
    def test_identity_stage_normalizes(self):
        dist = Distribution({"0": 2, "1": 6})
        result = IdentityStage().apply(dist)
        assert result.probability("1") == pytest.approx(0.75)

    def test_hammer_stage(self, noisy):
        result = HammerStage().apply(noisy)
        assert result.most_probable() == "111"

    def test_truncation_stage(self, noisy):
        result = TruncationStage(top_k=2).apply(noisy)
        assert result.num_outcomes == 2

    def test_truncation_no_op_when_small(self, noisy):
        result = TruncationStage(top_k=100).apply(noisy)
        assert result.num_outcomes == noisy.num_outcomes

    def test_truncation_rejects_nonpositive(self):
        with pytest.raises(DistributionError):
            TruncationStage(0)

    def test_callable_stage(self, noisy):
        stage = CallableStage(lambda d: d.top_k(3), name="top3")
        assert stage.apply(noisy).num_outcomes == 3
        assert stage.name == "top3"

    def test_callable_stage_rejects_non_distribution(self, noisy):
        stage = CallableStage(lambda d: "oops")
        with pytest.raises(DistributionError):
            stage.apply(noisy)


class TestPipeline:
    def test_rejects_empty(self):
        with pytest.raises(DistributionError):
            PostProcessingPipeline([])

    def test_stage_order(self, noisy):
        pipeline = PostProcessingPipeline([TruncationStage(4), HammerStage()])
        result = pipeline(noisy)
        assert result.num_outcomes == 4
        assert sum(result.probabilities().values()) == pytest.approx(1.0)

    def test_apply_with_trace(self, noisy):
        pipeline = PostProcessingPipeline([TruncationStage(4), HammerStage()])
        trace = pipeline.apply_with_trace(noisy)
        assert [name for name, _ in trace] == ["truncate", "hammer"]
        assert trace[0][1].num_outcomes == 4

    def test_stage_names(self):
        pipeline = PostProcessingPipeline([IdentityStage(), HammerStage()])
        assert pipeline.stage_names() == ["identity", "hammer"]

    def test_hammer_default_constructor(self, noisy):
        pipeline = PostProcessingPipeline.hammer_default(top_k=5)
        assert pipeline.stage_names() == ["truncate", "hammer"]
        assert pipeline(noisy).most_probable() == "111"

    def test_baseline_constructor(self, noisy):
        pipeline = PostProcessingPipeline.baseline()
        assert pipeline(noisy) == noisy.normalized()
