"""Unit and property-based tests for bitstring utilities."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import bitstring as bs
from repro.exceptions import BitstringError

bitstrings = st.text(alphabet="01", min_size=1, max_size=24)


def paired_bitstrings(max_size: int = 24):
    """Strategy producing two bitstrings of equal width."""
    return st.integers(min_value=1, max_value=max_size).flatmap(
        lambda n: st.tuples(
            st.text(alphabet="01", min_size=n, max_size=n),
            st.text(alphabet="01", min_size=n, max_size=n),
        )
    )


class TestValidation:
    def test_accepts_valid_bitstring(self):
        assert bs.validate_bitstring("0101") == "0101"

    def test_rejects_empty(self):
        with pytest.raises(BitstringError):
            bs.validate_bitstring("")

    def test_rejects_bad_characters(self):
        with pytest.raises(BitstringError):
            bs.validate_bitstring("01a1")

    def test_rejects_wrong_width(self):
        with pytest.raises(BitstringError):
            bs.validate_bitstring("010", num_bits=4)

    def test_rejects_non_string(self):
        with pytest.raises(BitstringError):
            bs.validate_bitstring(0b0101)  # type: ignore[arg-type]


class TestConversions:
    def test_round_trip_small(self):
        assert bs.bitstring_to_int("1010") == 10
        assert bs.int_to_bitstring(10, 4) == "1010"

    @given(st.integers(min_value=0, max_value=2**20 - 1))
    def test_round_trip_property(self, value):
        assert bs.bitstring_to_int(bs.int_to_bitstring(value, 20)) == value

    def test_int_to_bitstring_rejects_overflow(self):
        with pytest.raises(BitstringError):
            bs.int_to_bitstring(16, 4)

    def test_int_to_bitstring_rejects_negative(self):
        with pytest.raises(BitstringError):
            bs.int_to_bitstring(-1, 4)

    def test_int_to_bitstring_rejects_zero_width(self):
        with pytest.raises(BitstringError):
            bs.int_to_bitstring(0, 0)


class TestHammingDistance:
    def test_known_values(self):
        assert bs.hamming_distance("0000", "0000") == 0
        assert bs.hamming_distance("0000", "1111") == 4
        assert bs.hamming_distance("1010", "1001") == 2

    def test_rejects_width_mismatch(self):
        with pytest.raises(BitstringError):
            bs.hamming_distance("00", "000")

    @given(paired_bitstrings())
    def test_symmetry(self, pair):
        a, b = pair
        assert bs.hamming_distance(a, b) == bs.hamming_distance(b, a)

    @given(paired_bitstrings())
    def test_bounds(self, pair):
        a, b = pair
        distance = bs.hamming_distance(a, b)
        assert 0 <= distance <= len(a)
        assert (distance == 0) == (a == b)

    @given(bitstrings)
    def test_weight_is_distance_to_zero(self, value):
        assert bs.hamming_weight(value) == bs.hamming_distance(value, "0" * len(value))


class TestFlipAndNeighbors:
    def test_flip_bits(self):
        assert bs.flip_bits("0000", [0, 3]) == "1001"

    def test_flip_bits_out_of_range(self):
        with pytest.raises(BitstringError):
            bs.flip_bits("0000", [4])

    def test_neighbors_at_distance_counts(self):
        neighbors = list(bs.neighbors_at_distance("0000", 2))
        assert len(neighbors) == 6
        assert all(bs.hamming_distance(n, "0000") == 2 for n in neighbors)

    def test_neighbors_at_distance_zero(self):
        assert list(bs.neighbors_at_distance("101", 0)) == ["101"]

    def test_neighbors_rejects_bad_distance(self):
        with pytest.raises(BitstringError):
            list(bs.neighbors_at_distance("101", 4))

    @given(bitstrings, st.integers(min_value=1, max_value=3))
    @settings(max_examples=30)
    def test_neighbors_all_at_exact_distance(self, value, distance):
        if distance > len(value):
            return
        for neighbor in bs.neighbors_at_distance(value, distance):
            assert bs.hamming_distance(neighbor, value) == distance


class TestEnumerationAndRandom:
    def test_all_bitstrings(self):
        assert bs.all_bitstrings(2) == ["00", "01", "10", "11"]

    def test_all_bitstrings_guard(self):
        with pytest.raises(BitstringError):
            bs.all_bitstrings(30)

    def test_random_bitstring_reproducible(self):
        rng = np.random.default_rng(5)
        first = bs.random_bitstring(16, rng)
        rng = np.random.default_rng(5)
        second = bs.random_bitstring(16, rng)
        assert first == second
        assert len(first) == 16


class TestPackedDistances:
    @given(st.lists(st.text(alphabet="01", min_size=7, max_size=7), min_size=1, max_size=20))
    @settings(max_examples=30)
    def test_pairwise_matrix_matches_scalar(self, strings):
        matrix = bs.pairwise_hamming_matrix(strings)
        for i, a in enumerate(strings):
            for j, b in enumerate(strings):
                assert matrix[i, j] == bs.hamming_distance(a, b)

    def test_pairwise_matrix_wide_strings(self):
        strings = ["0" * 70, "1" * 70, ("10" * 35)]
        matrix = bs.pairwise_hamming_matrix(strings)
        assert matrix[0, 1] == 70
        assert matrix[0, 2] == 35
        assert matrix[1, 2] == 35

    def test_distance_to_reference(self):
        strings = ["000", "001", "011", "111"]
        distances = bs.hamming_distance_to_reference(strings, "000")
        assert list(distances) == [0, 1, 2, 3]

    def test_pack_rejects_empty(self):
        with pytest.raises(BitstringError):
            bs.pack_bitstrings([])

    def test_pack_rejects_mixed_width(self):
        with pytest.raises(BitstringError):
            bs.pack_bitstrings(["00", "000"])
