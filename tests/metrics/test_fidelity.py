"""Tests for PST, IST, TVD and related histogram metrics."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import Distribution
from repro.exceptions import DistributionError
from repro.metrics import (
    classical_fidelity,
    correct_outcome_rank,
    geometric_mean,
    hellinger_distance,
    inference_is_correct,
    inference_strength,
    probability_of_successful_trial,
    relative_improvement,
    total_variation_distance,
)


def distributions(num_bits: int = 4):
    outcome = st.integers(min_value=0, max_value=2**num_bits - 1).map(
        lambda v: format(v, f"0{num_bits}b")
    )
    return st.dictionaries(outcome, st.floats(min_value=0.01, max_value=10.0), min_size=1, max_size=10).map(
        lambda data: Distribution(data, num_bits=num_bits)
    )


@pytest.fixture
def noisy():
    return Distribution({"11": 0.5, "10": 0.3, "01": 0.2})


class TestPst:
    def test_single_correct(self, noisy):
        assert probability_of_successful_trial(noisy, "11") == pytest.approx(0.5)

    def test_multiple_correct(self, noisy):
        assert probability_of_successful_trial(noisy, ["11", "01"]) == pytest.approx(0.7)

    def test_absent_correct(self, noisy):
        assert probability_of_successful_trial(noisy, "00") == 0.0

    def test_rejects_empty(self, noisy):
        with pytest.raises(DistributionError):
            probability_of_successful_trial(noisy, [])


class TestIst:
    def test_basic_ratio(self, noisy):
        assert inference_strength(noisy, "11") == pytest.approx(0.5 / 0.3)

    def test_ist_below_one_when_wrong_answer_dominates(self, noisy):
        assert inference_strength(noisy, "01") == pytest.approx(0.2 / 0.5)

    def test_infinite_when_no_incorrect(self):
        dist = Distribution({"1": 1.0})
        assert inference_strength(dist, "1") == math.inf

    def test_rejects_empty(self, noisy):
        with pytest.raises(DistributionError):
            inference_strength(noisy, [])


class TestRankAndInference:
    def test_rank_of_top_outcome(self, noisy):
        assert correct_outcome_rank(noisy, "11") == 1
        assert inference_is_correct(noisy, "11")

    def test_rank_of_lower_outcome(self, noisy):
        assert correct_outcome_rank(noisy, "01") == 3
        assert not inference_is_correct(noisy, "01")

    def test_rank_when_unobserved(self, noisy):
        assert correct_outcome_rank(noisy, "00") == noisy.num_outcomes + 1


class TestDistances:
    def test_tvd_identical(self, noisy):
        assert total_variation_distance(noisy, noisy) == pytest.approx(0.0)

    def test_tvd_disjoint(self):
        a = Distribution({"0": 1.0})
        b = Distribution({"1": 1.0})
        assert total_variation_distance(a, b) == pytest.approx(1.0)

    def test_tvd_rejects_width_mismatch(self):
        with pytest.raises(DistributionError):
            total_variation_distance(Distribution({"0": 1.0}), Distribution({"00": 1.0}))

    def test_hellinger_bounds(self):
        a = Distribution({"0": 1.0})
        b = Distribution({"1": 1.0})
        assert hellinger_distance(a, b) == pytest.approx(1.0)
        assert hellinger_distance(a, a) == pytest.approx(0.0)

    def test_classical_fidelity(self):
        a = Distribution({"0": 0.5, "1": 0.5})
        assert classical_fidelity(a, a) == pytest.approx(1.0)
        assert classical_fidelity(a, Distribution({"0": 1.0})) == pytest.approx(0.5)

    @given(distributions(), distributions())
    @settings(max_examples=25)
    def test_tvd_symmetry_and_bounds(self, a, b):
        forward = total_variation_distance(a, b)
        backward = total_variation_distance(b, a)
        assert forward == pytest.approx(backward)
        assert 0.0 <= forward <= 1.0 + 1e-9

    @given(distributions())
    @settings(max_examples=25)
    def test_hellinger_zero_on_self(self, dist):
        assert hellinger_distance(dist, dist) == pytest.approx(0.0, abs=1e-9)


class TestSummaries:
    def test_relative_improvement(self):
        assert relative_improvement(0.2, 0.3) == pytest.approx(1.5)

    def test_relative_improvement_zero_baseline(self):
        assert relative_improvement(0.0, 0.3) == math.inf
        assert relative_improvement(0.0, 0.0) == 1.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_skips_nonfinite(self):
        assert geometric_mean([2.0, math.inf]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_empty(self):
        with pytest.raises(DistributionError):
            geometric_mean([])
