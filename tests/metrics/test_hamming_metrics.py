"""Tests for Hamming-structure summary metrics."""

from __future__ import annotations

import pytest

from repro.core import Distribution
from repro.exceptions import DistributionError
from repro.metrics import (
    cluster_density,
    spearman_correlation,
    structure_ratio,
    summarize_hamming_structure,
)


@pytest.fixture
def clustered():
    return Distribution({"0000": 0.5, "0001": 0.2, "0010": 0.2, "1111": 0.1})


class TestSummary:
    def test_summary_fields(self, clustered):
        summary = summarize_hamming_structure(clustered, ["0000"])
        assert summary.num_bits == 4
        assert summary.correct_probability == pytest.approx(0.5)
        assert summary.uniform_ehd == pytest.approx(2.0)
        assert summary.mass_within_two == pytest.approx(0.9)
        assert summary.num_outcomes == 4
        assert 0.0 < summary.ehd < summary.uniform_ehd

    def test_normalized_ehd(self, clustered):
        summary = summarize_hamming_structure(clustered, ["0000"])
        assert summary.normalized_ehd == pytest.approx(summary.ehd / 2.0)


class TestClusterDensity:
    def test_fully_clustered(self):
        dist = Distribution({"000": 0.5, "001": 0.5})
        assert cluster_density(dist, ["000"], radius=1) == pytest.approx(1.0)

    def test_partially_clustered(self, clustered):
        density = cluster_density(clustered, ["0000"], radius=2)
        assert density == pytest.approx(0.4 / 0.5)

    def test_no_errors_reports_full_density(self):
        dist = Distribution({"000": 1.0})
        assert cluster_density(dist, ["000"]) == 1.0

    def test_rejects_negative_radius(self, clustered):
        with pytest.raises(DistributionError):
            cluster_density(clustered, ["0000"], radius=-1)


class TestStructureRatio:
    def test_perfect_output_has_full_structure(self):
        dist = Distribution({"0000": 1.0})
        assert structure_ratio(dist, ["0000"]) == pytest.approx(1.0)

    def test_uniform_output_has_no_structure(self):
        uniform = Distribution.uniform(6)
        assert structure_ratio(uniform, ["000000"]) == pytest.approx(0.0, abs=1e-9)


class TestSpearman:
    def test_perfect_monotone(self):
        assert spearman_correlation([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_inverse(self):
        assert spearman_correlation([1, 2, 3, 4], [4, 3, 2, 1]) == pytest.approx(-1.0)

    def test_constant_series_returns_zero(self):
        assert spearman_correlation([1, 2, 3], [5, 5, 5]) == 0.0

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(DistributionError):
            spearman_correlation([1, 2], [1, 2, 3])

    def test_rejects_too_few_points(self):
        with pytest.raises(DistributionError):
            spearman_correlation([1, 2], [3, 4])
