"""Tests for QAOA figures of merit (expected cost, Cost Ratio, quality curves)."""

from __future__ import annotations

import pytest

from repro.core import Distribution
from repro.exceptions import DistributionError
from repro.maxcut import CutCostEvaluator, ring_graph_problem
from repro.metrics import (
    approximation_ratio,
    cost_ratio,
    cumulative_quality_probability,
    expected_cost,
    solution_quality_curve,
)


@pytest.fixture
def ring4():
    """4-node ring: optimal cuts are the two alternating colourings with cost -4."""
    problem = ring_graph_problem(4)
    return problem, CutCostEvaluator(problem)


class TestExpectedCostAndRatio:
    def test_point_mass_on_optimum(self, ring4):
        _, evaluator = ring4
        dist = Distribution({"0101": 1.0})
        assert expected_cost(dist, evaluator.cost) == pytest.approx(-4.0)
        assert cost_ratio(dist, evaluator.cost, evaluator.minimum_cost()) == pytest.approx(1.0)

    def test_uniform_distribution_has_zero_expected_cost(self, ring4):
        _, evaluator = ring4
        uniform = Distribution.uniform(4)
        assert expected_cost(uniform, evaluator.cost) == pytest.approx(0.0, abs=1e-9)
        assert cost_ratio(uniform, evaluator.cost, evaluator.minimum_cost()) == pytest.approx(0.0, abs=1e-9)

    def test_cost_ratio_rejects_zero_minimum(self, ring4):
        _, evaluator = ring4
        with pytest.raises(DistributionError):
            cost_ratio(Distribution({"0101": 1.0}), evaluator.cost, 0.0)

    def test_approximation_ratio_bounds(self, ring4):
        _, evaluator = ring4
        optimal = Distribution({"0101": 1.0})
        worst = Distribution({"0000": 1.0})
        c_min, c_max = evaluator.minimum_cost(), evaluator.maximum_cost()
        assert approximation_ratio(optimal, evaluator.cost, c_min, c_max) == pytest.approx(1.0)
        assert approximation_ratio(worst, evaluator.cost, c_min, c_max) == pytest.approx(0.0)

    def test_approximation_ratio_rejects_degenerate_range(self, ring4):
        _, evaluator = ring4
        with pytest.raises(DistributionError):
            approximation_ratio(Distribution({"0101": 1.0}), evaluator.cost, -4.0, -4.0)


class TestQualityCurve:
    def test_curve_sorted_best_first(self, ring4):
        _, evaluator = ring4
        dist = Distribution({"0101": 0.4, "0000": 0.3, "0001": 0.3})
        curve = solution_quality_curve(dist, evaluator.cost, evaluator.minimum_cost())
        qualities = [point.quality for point in curve]
        assert qualities == sorted(qualities, reverse=True)
        assert curve[-1].cumulative_probability == pytest.approx(1.0)

    def test_curve_rejects_zero_minimum(self, ring4):
        _, evaluator = ring4
        with pytest.raises(DistributionError):
            solution_quality_curve(Distribution({"0101": 1.0}), evaluator.cost, 0.0)

    def test_cumulative_quality_probability(self, ring4):
        _, evaluator = ring4
        dist = Distribution({"0101": 0.25, "1010": 0.25, "0000": 0.5})
        optimal_mass = cumulative_quality_probability(dist, evaluator.cost, evaluator.minimum_cost())
        assert optimal_mass == pytest.approx(0.5)

    def test_cumulative_quality_threshold(self, ring4):
        _, evaluator = ring4
        dist = Distribution({"0101": 0.25, "0001": 0.75})  # "0001" cuts 2 of 4 edges -> cost 0
        mass_above_zero = cumulative_quality_probability(
            dist, evaluator.cost, evaluator.minimum_cost(), quality_threshold=0.0
        )
        assert mass_above_zero == pytest.approx(1.0)


class TestVectorizedDispatch:
    """The packed fast path must only replace the evaluator's cost method."""

    def _evaluator(self):
        from repro.maxcut.graphs import regular_graph_problem
        from repro.maxcut.cost import CutCostEvaluator

        return CutCostEvaluator(regular_graph_problem(4, degree=3, seed=1))

    def test_expected_cost_matches_per_outcome(self):
        from repro.core.distribution import Distribution
        from repro.metrics.qaoa_metrics import expected_cost

        evaluator = self._evaluator()
        dist = Distribution({"0101": 1.0, "0011": 2.0, "1111": 1.0})
        fast = expected_cost(dist, evaluator.cost)
        slow = sum(p * evaluator.cost(o) for o, p in dist.items())
        assert fast == pytest.approx(slow)

    def test_other_bound_methods_are_not_hijacked(self):
        from repro.core.distribution import Distribution
        from repro.metrics.qaoa_metrics import expected_cost

        evaluator = self._evaluator()
        dist = Distribution({"0101": 1.0, "0011": 2.0, "1111": 1.0})
        fast = expected_cost(dist, evaluator.cut_value)
        slow = sum(p * evaluator.cut_value(o) for o, p in dist.items())
        assert fast == pytest.approx(slow)
