"""Unit tests for the packed-tableau stabilizer simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import (
    StabilizerBackend,
    StabilizerState,
    StatevectorBackend,
    get_backend,
    resolve_backend,
    simulate_stabilizer,
    stabilizer_distribution,
)
from repro.circuits.bv import bernstein_vazirani
from repro.circuits.ghz import ghz_circuit, ghz_correct_outcomes
from repro.exceptions import BackendError
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.statevector import ideal_distribution


class TestKnownStates:
    def test_all_zero_state(self):
        circuit = QuantumCircuit(3)
        dist = stabilizer_distribution(circuit)
        assert dist.probabilities() == {"000": 1.0}

    @pytest.mark.parametrize("key", ["1", "101", "1111", "1001101"])
    def test_bv_recovers_the_key_exactly(self, key):
        dist = stabilizer_distribution(bernstein_vazirani(key))
        assert dist.probabilities() == {key: 1.0}

    @pytest.mark.parametrize("num_qubits", [2, 5, 10])
    def test_ghz_two_outcome_support(self, num_qubits):
        dist = stabilizer_distribution(ghz_circuit(num_qubits))
        assert dist.outcomes() == ghz_correct_outcomes(num_qubits)
        assert dist.probability("0" * num_qubits) == pytest.approx(0.5)
        assert dist.probability("1" * num_qubits) == pytest.approx(0.5)

    def test_plus_state_is_uniform(self):
        circuit = QuantumCircuit(2).h(0).h(1)
        dist = stabilizer_distribution(circuit)
        assert dist.num_outcomes == 4
        assert all(p == pytest.approx(0.25) for p in dist.probabilities().values())

    def test_support_is_in_ascending_order(self):
        # Matches the statevector constructor's order — the property that
        # keeps downstream sampling streams aligned between backends.
        circuit = QuantumCircuit(4).h(0).h(2).cx(0, 1)
        dist = stabilizer_distribution(circuit)
        values = [int(outcome, 2) for outcome in dist.outcomes()]
        assert values == sorted(values)


class TestWideRegisters:
    def test_bv_across_the_word_boundary(self):
        # 70 qubits spans two uint64 words; the packing layout (right-aligned
        # final word) must match core.bitstring exactly.
        key = ("10" * 35)[:70]
        dist = stabilizer_distribution(bernstein_vazirani(key))
        assert dist.probabilities() == {key: 1.0}

    def test_ghz_127(self):
        dist = stabilizer_distribution(ghz_circuit(127))
        assert dist.outcomes() == ["0" * 127, "1" * 127]

    def test_width_limit_is_enforced(self):
        with pytest.raises(BackendError, match="4096"):
            StabilizerState(5000)


class TestMeasurement:
    def test_deterministic_measurement(self):
        state = simulate_stabilizer(bernstein_vazirani("110"))
        outcomes = []
        for qubit in range(3):
            outcome, was_random = state.measure(qubit)
            assert not was_random
            outcomes.append(outcome)
        assert outcomes == [1, 1, 0]

    def test_random_measurement_collapses(self):
        state = simulate_stabilizer(ghz_circuit(4))
        first, was_random = state.measure(0, forced=1)
        assert was_random and first == 1
        # Every later qubit is now deterministic and correlated.
        for qubit in range(1, 4):
            outcome, was_random = state.measure(qubit)
            assert not was_random and outcome == 1

    def test_forced_zero_branch(self):
        state = simulate_stabilizer(ghz_circuit(3))
        outcome, _ = state.measure(0, forced=0)
        assert outcome == 0
        assert state.measure(2)[0] == 0

    def test_random_measurement_without_rng_refuses(self):
        state = simulate_stabilizer(ghz_circuit(3))
        with pytest.raises(BackendError, match="pass rng= or forced="):
            state.measure(0)

    def test_rng_measurement_is_reproducible(self):
        results = []
        for _ in range(2):
            state = simulate_stabilizer(ghz_circuit(5))
            rng = np.random.default_rng(7)
            results.append([state.measure(q, rng=rng)[0] for q in range(5)])
        assert results[0] == results[1]
        assert results[0] in ([0] * 5, [1] * 5)


class TestErrors:
    def test_non_clifford_gate_raises(self):
        circuit = QuantumCircuit(2).h(0).t(0)
        with pytest.raises(BackendError, match="non-Clifford"):
            stabilizer_distribution(circuit)

    def test_non_quarter_rotation_raises(self):
        circuit = QuantumCircuit(1).rz(0.3, 0)
        with pytest.raises(BackendError):
            stabilizer_distribution(circuit)

    def test_support_enumeration_limit(self):
        wide_uniform = QuantumCircuit(30)
        for qubit in range(30):
            wide_uniform.h(qubit)
        with pytest.raises(BackendError, match="enumeration"):
            stabilizer_distribution(wide_uniform, max_free_bits=8)

    def test_width_mismatch_raises(self):
        state = StabilizerState(2)
        with pytest.raises(BackendError):
            state.apply_circuit(QuantumCircuit(3).h(0))


class TestBackendRegistry:
    def test_registry_exposes_both_backends(self):
        assert isinstance(get_backend("statevector"), StatevectorBackend)
        assert isinstance(get_backend("stabilizer"), StabilizerBackend)
        with pytest.raises(BackendError, match="unknown backend"):
            get_backend("density-matrix")

    def test_auto_dispatch_picks_stabilizer_for_clifford(self):
        clifford = bernstein_vazirani("1011")
        assert resolve_backend("auto", clifford).name == "stabilizer"

    def test_auto_dispatch_falls_back_for_non_clifford(self):
        circuit = QuantumCircuit(3).h(0).t(0)
        assert resolve_backend("auto", circuit).name == "statevector"

    def test_auto_dispatch_fails_cleanly_when_nothing_fits(self):
        wide_t = QuantumCircuit(30).h(0).t(0)
        with pytest.raises(BackendError, match="no backend"):
            resolve_backend("auto", wide_t)

    def test_auto_falls_back_to_dense_for_wide_superpositions(self):
        # 16-qubit all-H is Clifford but measures into 2**16 outcomes —
        # beyond the tableau's enumeration limit.  Auto must notice (the
        # support-dimension check is one cheap Gaussian elimination) and
        # hand the circuit to the dense backend instead of crashing.
        superposition = QuantumCircuit(16)
        for qubit in range(16):
            superposition.h(qubit)
        assert resolve_backend("auto", superposition).name == "statevector"
        with pytest.raises(BackendError, match="enumeration"):
            resolve_backend("stabilizer", superposition)

    def test_auto_reports_enumeration_limit_when_nothing_fits(self):
        wide_superposition = QuantumCircuit(30)
        for qubit in range(30):
            wide_superposition.h(qubit)
        with pytest.raises(BackendError, match="no backend.*enumeration"):
            resolve_backend("auto", wide_superposition)

    def test_explicit_stabilizer_validates_gate_set(self):
        circuit = QuantumCircuit(2).h(0).rz(0.7, 1)
        with pytest.raises(BackendError, match="non-Clifford"):
            resolve_backend("stabilizer", circuit)

    def test_statevector_backend_matches_direct_simulation(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1).t(2)
        via_backend = get_backend("statevector").ideal_distribution(circuit)
        assert via_backend == ideal_distribution(circuit)

    def test_probe_and_ideal_share_one_tableau_pass(self, monkeypatch):
        # The dispatch probe (support-dimension check) and ideal_distribution
        # must reuse one simulation, and duplicate-content jobs in a batch
        # must resolve once — not one tableau pass per job.
        import repro.backends.stabilizer as stabilizer_module
        from repro.engine import CircuitJob, ExecutionEngine
        from repro.quantum.noise import NoiseModel

        passes = []
        original = stabilizer_module.StabilizerState.apply_circuit

        def counting(self, circuit):
            passes.append(circuit.name)
            return original(self, circuit)

        monkeypatch.setattr(stabilizer_module.StabilizerState, "apply_circuit", counting)
        jobs = [
            CircuitJob(job_id=f"dup-{i}", circuit=bernstein_vazirani("1" * 40),
                       shots=64, noise_model=NoiseModel(), backend="stabilizer")
            for i in range(3)
        ]
        ExecutionEngine().run(jobs, seed=0)
        assert len(passes) == 1
