"""Shared hypothesis strategies for the backend test suite.

Imported as a plain module (``from strategies import ...``); pytest puts
each rootdir-relative test directory on ``sys.path`` while collecting it.
"""

from __future__ import annotations

import math

from hypothesis import strategies as st

from repro.quantum.circuit import QuantumCircuit

#: The satellite-task gate set: circuits built only from these are Clifford.
CORE_CLIFFORD_1Q = ("h", "s", "x", "z")
CORE_CLIFFORD_2Q = ("cx", "cz")

#: The full fixed Clifford vocabulary the stabilizer backend lowers.
EXTENDED_CLIFFORD_1Q = ("h", "s", "sdg", "x", "y", "z", "sx")
EXTENDED_CLIFFORD_2Q = ("cx", "cz", "swap", "iswap")

#: Quarter-turn rotation gates (Clifford at multiples of pi/2).
ROTATION_1Q = ("rx", "ry", "rz", "p")


@st.composite
def clifford_circuits(
    draw,
    min_qubits: int = 2,
    max_qubits: int = 6,
    max_gates: int = 24,
    single_gates: tuple[str, ...] = CORE_CLIFFORD_1Q,
    two_gates: tuple[str, ...] = CORE_CLIFFORD_2Q,
    include_rotations: bool = False,
) -> QuantumCircuit:
    """Random Clifford circuits over a configurable gate vocabulary."""
    num_qubits = draw(st.integers(min_qubits, max_qubits))
    circuit = QuantumCircuit(num_qubits, name="hyp-clifford")
    for _ in range(draw(st.integers(0, max_gates))):
        kind = draw(st.integers(0, 2 if include_rotations else 1))
        if kind == 2:
            gate = draw(st.sampled_from(ROTATION_1Q))
            turns = draw(st.integers(0, 7))
            circuit.append(gate, [draw(st.integers(0, num_qubits - 1))], [turns * math.pi / 2])
        elif kind == 1 and num_qubits >= 2:
            gate = draw(st.sampled_from(two_gates))
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            circuit.append(gate, [a, b])
        else:
            gate = draw(st.sampled_from(single_gates))
            circuit.append(gate, [draw(st.integers(0, num_qubits - 1))])
    return circuit


@st.composite
def non_clifford_angles(draw) -> float:
    """Angles bounded away from every multiple of pi/2 (classifier-negative)."""
    turns = draw(st.integers(-4, 4))
    offset = draw(
        st.floats(0.05, math.pi / 2 - 0.05, allow_nan=False, allow_infinity=False)
    )
    return turns * (math.pi / 2) + offset
