"""Property tests for the Clifford detector (backend auto-dispatch rules).

The three satellite properties:

1. any circuit built only from {H, S, X, Z, CX, CZ} classifies Clifford;
2. adding one T (or an RZ whose angle is not a multiple of pi/2) flips the
   classification;
3. transpilation (routing + basis decomposition) never changes the
   classification, in either direction.
"""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import clifford_circuits, non_clifford_angles  # tests/backends/strategies.py

from repro.backends import is_clifford_circuit, is_clifford_instruction
from repro.backends.clifford import quarter_turns
from repro.quantum.circuit import Instruction, QuantumCircuit
from repro.quantum.coupling import linear_coupling
from repro.quantum.transpiler import transpile

_SETTINGS = dict(deadline=None, derandomize=True)


class TestCoreGateSetIsClifford:
    @given(circuit=clifford_circuits())
    @settings(max_examples=60, **_SETTINGS)
    def test_core_gate_circuits_classify_clifford(self, circuit):
        assert is_clifford_circuit(circuit)

    @given(
        circuit=clifford_circuits(
            single_gates=("h", "s", "sdg", "x", "y", "z", "sx"),
            two_gates=("cx", "cz", "swap", "iswap"),
            include_rotations=True,
        )
    )
    @settings(max_examples=60, **_SETTINGS)
    def test_extended_vocabulary_classifies_clifford(self, circuit):
        assert is_clifford_circuit(circuit)


class TestOneBadGateFlipsIt:
    @given(circuit=clifford_circuits(), position=st.integers(0, 1_000), use_t=st.booleans(),
           angle=non_clifford_angles())
    @settings(max_examples=60, **_SETTINGS)
    def test_inserting_t_or_irrational_rz_flips_classification(
        self, circuit, position, use_t, angle
    ):
        qubit = position % circuit.num_qubits
        if use_t:
            poisoned_gate = Instruction("t", (qubit,))
        else:
            poisoned_gate = Instruction("rz", (qubit,), (angle,))
        poisoned = circuit.copy()
        where = position % (len(circuit.instructions) + 1)
        poisoned.instructions.insert(where, poisoned_gate)
        assert is_clifford_circuit(circuit)
        assert not is_clifford_circuit(poisoned)

    def test_quarter_turn_rz_stays_clifford(self):
        for turns in range(-4, 5):
            circuit = QuantumCircuit(1).rz(turns * math.pi / 2, 0)
            assert is_clifford_circuit(circuit)

    def test_quarter_turns_helper(self):
        assert quarter_turns(math.pi / 2) == 1
        assert quarter_turns(-math.pi / 2) == 3
        assert quarter_turns(2 * math.pi) == 0
        assert quarter_turns(math.pi / 4) is None

    def test_cp_needs_a_multiple_of_pi(self):
        assert is_clifford_instruction(Instruction("cp", (0, 1), (math.pi,)))
        assert not is_clifford_instruction(Instruction("cp", (0, 1), (math.pi / 2,)))

    def test_u3_and_tdg_are_never_clifford(self):
        assert not is_clifford_instruction(Instruction("u3", (0,), (0.0, 0.0, 0.0)))
        assert not is_clifford_instruction(Instruction("tdg", (0,)))


class TestTranspilationPreservesClassification:
    @pytest.mark.parametrize("basis", [("rz", "sx", "x", "cx"), ("rz", "sx", "x", "cz")])
    @given(circuit=clifford_circuits(min_qubits=3, max_qubits=6), poison=st.booleans())
    @settings(max_examples=40, **_SETTINGS)
    def test_routing_and_decomposition_never_flip_it(self, basis, circuit, poison):
        if poison:
            circuit = circuit.copy()
            circuit.instructions.append(Instruction("t", (0,)))
        before = is_clifford_circuit(circuit)
        transpiled = transpile(
            circuit,
            coupling_map=linear_coupling(circuit.num_qubits),
            basis_gates=basis,
        )
        assert is_clifford_circuit(transpiled.circuit) == before

    def test_decomposed_hadamard_classifies_through_float_residue(self):
        # The ZYZ decomposition of H produces rz angles like pi/2 with float
        # rounding; the detector's tolerance must absorb it.
        transpiled = transpile(QuantumCircuit(2).h(0).h(1), basis_gates=("rz", "sx", "x", "cx"))
        assert any(inst.name == "rz" for inst in transpiled.circuit.instructions)
        assert is_clifford_circuit(transpiled.circuit)
