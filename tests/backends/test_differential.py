"""Differential test harness: stabilizer ≡ statevector on Clifford circuits.

Hypothesis-generated random Clifford circuits (and the paper's Clifford
workloads, BV and GHZ, transpiled onto a real topology) run through both
backends at fixed seeds and must produce

* identical ideal distributions (same support, same order, same
  probabilities), and
* identical noisy histograms under the same calibration snapshot — the
  engine's sampling stream consumes the ideal support row-for-row, so any
  support-order or probability divergence between the backends would show
  up as differing histograms.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest
from hypothesis import given, settings

from strategies import (  # tests/backends/strategies.py
    EXTENDED_CLIFFORD_1Q,
    EXTENDED_CLIFFORD_2Q,
    clifford_circuits,
)

from repro.backends import get_backend
from repro.calibration import synthetic_snapshot
from repro.circuits.bv import bernstein_vazirani, bv_secret_key
from repro.circuits.ghz import ghz_circuit
from repro.engine import CircuitJob, ExecutionEngine
from repro.quantum.coupling import linear_coupling
from repro.quantum.device import DeviceProfile
from repro.quantum.noise import NoiseModel, ReadoutError

_SETTINGS = dict(deadline=None, derandomize=True)


@lru_cache(maxsize=None)
def _calibrated_noise_model(num_qubits: int) -> NoiseModel:
    """A per-qubit/per-edge calibrated noise model for an n-qubit register."""
    profile = DeviceProfile(
        name=f"diff-{num_qubits}",
        num_qubits=num_qubits,
        coupling_map=linear_coupling(num_qubits),
        noise_model=NoiseModel(
            single_qubit_error=0.002,
            two_qubit_error=0.02,
            readout_error=ReadoutError(prob_1_given_0=0.02, prob_0_given_1=0.04),
            idle_error_per_layer=0.001,
            crosstalk_error=0.0005,
        ),
    )
    snapshot = synthetic_snapshot(profile, seed=13, spread=0.35)
    return profile.noise_model.with_calibration(snapshot)


def _run(circuit, backend: str, shots: int = 512, transpile: bool = False):
    """One engine execution of the circuit on the given backend."""
    noise_model = _calibrated_noise_model(circuit.num_qubits)
    job = CircuitJob(
        job_id=f"diff-{backend}",
        circuit=circuit,
        shots=shots,
        noise_model=noise_model,
        coupling_map=linear_coupling(circuit.num_qubits) if transpile else None,
        basis_gates=("rz", "sx", "x", "cx") if transpile else None,
        backend=backend,
    )
    return ExecutionEngine().run_single(job, seed=11)


class TestIdealDistributions:
    @given(circuit=clifford_circuits(max_qubits=6, max_gates=24,
                                     single_gates=EXTENDED_CLIFFORD_1Q,
                                     two_gates=EXTENDED_CLIFFORD_2Q,
                                     include_rotations=True))
    @settings(max_examples=50, **_SETTINGS)
    def test_random_clifford_circuits_agree(self, circuit):
        dense = get_backend("statevector").ideal_distribution(circuit)
        tableau = get_backend("stabilizer").ideal_distribution(circuit)
        # Same support in the same (ascending) order …
        assert tableau.outcomes() == dense.outcomes()
        # … with the same probabilities (tableau probabilities are exact
        # powers of two; dense ones carry float rounding).
        np.testing.assert_allclose(
            tableau.probability_vector(), dense.probability_vector(), atol=1e-9
        )
        assert tableau == dense


class TestNoisyHistograms:
    @given(circuit=clifford_circuits(max_qubits=5, max_gates=16))
    @settings(max_examples=20, **_SETTINGS)
    def test_random_clifford_histograms_identical(self, circuit):
        dense = _run(circuit, "statevector")
        tableau = _run(circuit, "stabilizer")
        assert dense.backend == "statevector" and tableau.backend == "stabilizer"
        assert tableau.noisy.counts() == dense.noisy.counts()
        assert tableau.ideal == dense.ideal

    @pytest.mark.parametrize("num_qubits", [4, 6, 8, 10])
    def test_bv_workload_identical_through_transpilation(self, num_qubits):
        circuit = bernstein_vazirani(bv_secret_key(num_qubits, "alternating"))
        dense = _run(circuit, "statevector", transpile=True)
        tableau = _run(circuit, "stabilizer", transpile=True)
        assert tableau.noisy.counts() == dense.noisy.counts()
        assert tableau.ideal == dense.ideal
        auto = _run(circuit, "auto", transpile=True)
        assert auto.backend == "stabilizer"
        assert auto.noisy.counts() == tableau.noisy.counts()

    @pytest.mark.parametrize("num_qubits", [4, 7, 10])
    def test_ghz_workload_identical_through_transpilation(self, num_qubits):
        circuit = ghz_circuit(num_qubits)
        dense = _run(circuit, "statevector", transpile=True)
        tableau = _run(circuit, "stabilizer", transpile=True)
        assert tableau.noisy.counts() == dense.noisy.counts()
        assert tableau.ideal == dense.ideal

    def test_seed_sensitivity_is_shared(self):
        circuit = bernstein_vazirani("10110")
        noise_model = _calibrated_noise_model(5)
        jobs = [
            CircuitJob(job_id="a", circuit=circuit, shots=512,
                       noise_model=noise_model, backend="stabilizer"),
        ]
        first = ExecutionEngine().run(jobs, seed=1)[0]
        second = ExecutionEngine().run(jobs, seed=2)[0]
        assert first.noisy.counts() != second.noisy.counts()
