"""Tests for QAOA ansatz construction and parameter schedules."""

from __future__ import annotations

import pytest

from repro.circuits import QaoaParameters, default_qaoa_parameters, qaoa_circuit
from repro.exceptions import CircuitError
from repro.maxcut import CutCostEvaluator, regular_graph_problem, ring_graph_problem
from repro.quantum import ideal_distribution


class TestParameters:
    def test_requires_matching_lengths(self):
        with pytest.raises(CircuitError):
            QaoaParameters(gammas=(0.1, 0.2), betas=(0.1,))

    def test_requires_at_least_one_layer(self):
        with pytest.raises(CircuitError):
            QaoaParameters(gammas=(), betas=())

    def test_flat_round_trip(self):
        params = QaoaParameters(gammas=(0.1, 0.2), betas=(-0.3, -0.4))
        assert QaoaParameters.from_flat(params.to_flat()) == params

    def test_from_flat_rejects_odd_length(self):
        with pytest.raises(CircuitError):
            QaoaParameters.from_flat([0.1, 0.2, 0.3])

    def test_default_parameters_shape(self):
        params = default_qaoa_parameters(3)
        assert params.num_layers == 3
        assert all(g > 0 for g in params.gammas)
        assert all(b < 0 for b in params.betas)

    def test_default_parameters_reject_nonpositive_layers(self):
        with pytest.raises(CircuitError):
            default_qaoa_parameters(0)


class TestCircuitStructure:
    def test_gate_counts(self):
        problem = ring_graph_problem(5)
        circuit = qaoa_circuit(problem, default_qaoa_parameters(2))
        counts = circuit.gate_counts()
        assert counts["h"] == 5
        assert counts["rzz"] == 2 * problem.num_edges
        assert counts["rx"] == 2 * 5

    def test_width_matches_problem(self):
        problem = regular_graph_problem(8, 3, seed=1)
        circuit = qaoa_circuit(problem, default_qaoa_parameters(1))
        assert circuit.num_qubits == 8

    def test_depth_grows_with_layers(self):
        problem = ring_graph_problem(6)
        shallow = qaoa_circuit(problem, default_qaoa_parameters(1))
        deep = qaoa_circuit(problem, default_qaoa_parameters(3))
        assert deep.depth() > shallow.depth()


class TestSolutionQuality:
    def test_ideal_cost_ratio_beats_random_guessing(self):
        problem = regular_graph_problem(8, 3, seed=2)
        evaluator = CutCostEvaluator(problem)
        circuit = qaoa_circuit(problem, default_qaoa_parameters(2))
        dist = ideal_distribution(circuit)
        cost_ratio = dist.expectation(evaluator.cost) / evaluator.minimum_cost()
        assert cost_ratio > 0.2  # random guessing gives ~0

    def test_quality_improves_with_layers_noise_free(self):
        problem = regular_graph_problem(10, 3, seed=3)
        evaluator = CutCostEvaluator(problem)
        ratios = []
        for layers in (1, 2, 3):
            dist = ideal_distribution(qaoa_circuit(problem, default_qaoa_parameters(layers)))
            ratios.append(dist.expectation(evaluator.cost) / evaluator.minimum_cost())
        assert ratios[0] < ratios[1] < ratios[2]

    def test_weighted_graph_weights_enter_cost_layer(self):
        from repro.maxcut import sherrington_kirkpatrick_problem

        problem = sherrington_kirkpatrick_problem(4, seed=0)
        circuit = qaoa_circuit(problem, default_qaoa_parameters(1))
        rzz_angles = {inst.params[0] for inst in circuit if inst.name == "rzz"}
        assert len(rzz_angles) >= 1  # +-1 weights produce at least two distinct signed angles
