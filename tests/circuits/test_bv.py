"""Tests for Bernstein-Vazirani circuit generation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuits import bernstein_vazirani, bv_correct_outcome, bv_secret_key
from repro.exceptions import BitstringError, CircuitError
from repro.quantum import ideal_distribution

keys = st.text(alphabet="01", min_size=2, max_size=8).filter(lambda k: "1" in k)


class TestKeys:
    def test_ones_pattern(self):
        assert bv_secret_key(5, "ones") == "11111"

    def test_alternating_pattern(self):
        assert bv_secret_key(6, "alternating") == "101010"

    def test_rejects_unknown_pattern(self):
        with pytest.raises(CircuitError):
            bv_secret_key(4, "random")

    def test_rejects_nonpositive_width(self):
        with pytest.raises(CircuitError):
            bv_secret_key(0)

    def test_correct_outcome_is_key(self):
        assert bv_correct_outcome("1011") == "1011"

    def test_random_key_is_seeded_and_nontrivial(self):
        import numpy as np

        from repro.circuits.bv import random_bv_key

        keys = [random_bv_key(6, np.random.default_rng(11)) for _ in range(3)]
        assert keys[0] == keys[1] == keys[2]  # deterministic for a fixed seed
        rng = np.random.default_rng(11)
        drawn = {random_bv_key(6, rng) for _ in range(50)}
        assert all(len(key) == 6 and "1" in key for key in drawn)
        assert len(drawn) > 10  # actually random across the stream

    def test_correct_outcome_rejects_bad_string(self):
        with pytest.raises(BitstringError):
            bv_correct_outcome("10a1")


class TestCircuit:
    @given(keys)
    @settings(max_examples=25, deadline=None)
    def test_ideal_output_is_key(self, key):
        circuit = bernstein_vazirani(key)
        dist = ideal_distribution(circuit)
        assert dist.probability(key) == pytest.approx(1.0, abs=1e-9)

    @given(keys)
    @settings(max_examples=15, deadline=None)
    def test_phase_oracle_variant_also_correct(self, key):
        circuit = bernstein_vazirani(key, entangling_oracle=False)
        dist = ideal_distribution(circuit)
        assert dist.probability(key) == pytest.approx(1.0, abs=1e-9)

    def test_entangling_oracle_uses_cx_gates(self):
        circuit = bernstein_vazirani("1111")
        assert circuit.num_two_qubit_gates() > 0

    def test_phase_oracle_has_no_two_qubit_gates(self):
        circuit = bernstein_vazirani("1111", entangling_oracle=False)
        assert circuit.num_two_qubit_gates() == 0

    def test_two_qubit_count_grows_with_key_weight(self):
        light = bernstein_vazirani("1000000001")
        heavy = bernstein_vazirani("1111111111")
        assert heavy.num_two_qubit_gates() > light.num_two_qubit_gates()

    def test_width_matches_key(self):
        assert bernstein_vazirani("10101").num_qubits == 5

    def test_rejects_invalid_key(self):
        with pytest.raises(BitstringError):
            bernstein_vazirani("012")
