"""Tests for the H·U_R·U_R†·H random identity benchmark family."""

from __future__ import annotations

import pytest

from repro.circuits import (
    RandomIdentitySpec,
    identity_correct_outcome,
    random_identity_circuit,
    random_unitary_circuit,
)
from repro.exceptions import CircuitError
from repro.quantum import ideal_distribution


class TestSpec:
    def test_rejects_single_qubit(self):
        with pytest.raises(CircuitError):
            RandomIdentitySpec(num_qubits=1, depth=3)

    def test_rejects_zero_depth(self):
        with pytest.raises(CircuitError):
            RandomIdentitySpec(num_qubits=4, depth=0)

    def test_rejects_bad_density(self):
        with pytest.raises(CircuitError):
            RandomIdentitySpec(num_qubits=4, depth=2, two_qubit_density=1.5)


class TestCircuits:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_ideal_output_is_all_zeros(self, seed):
        spec = RandomIdentitySpec(num_qubits=4, depth=3, two_qubit_density=0.6, seed=seed)
        circuit, _ = random_identity_circuit(spec)
        dist = ideal_distribution(circuit)
        assert dist.probability("0000") == pytest.approx(1.0, abs=1e-8)

    def test_entropy_nonnegative_and_bounded(self):
        spec = RandomIdentitySpec(num_qubits=4, depth=4, two_qubit_density=0.8, seed=7)
        _, entropy = random_identity_circuit(spec)
        assert 0.0 <= entropy <= 2.0  # at most min(|A|,|B|) qubits of entropy

    def test_higher_density_gives_more_two_qubit_gates(self):
        sparse = random_unitary_circuit(RandomIdentitySpec(4, 5, two_qubit_density=0.1, seed=3))
        dense = random_unitary_circuit(RandomIdentitySpec(4, 5, two_qubit_density=0.9, seed=3))
        assert dense.num_two_qubit_gates() > sparse.num_two_qubit_gates()

    def test_reproducible_for_same_seed(self):
        spec = RandomIdentitySpec(num_qubits=3, depth=2, seed=11)
        first = random_unitary_circuit(spec)
        second = random_unitary_circuit(spec)
        assert [ (i.name, i.qubits, i.params) for i in first ] == [
            (i.name, i.qubits, i.params) for i in second
        ]

    def test_depth_parameter_controls_length(self):
        shallow = random_unitary_circuit(RandomIdentitySpec(4, 2, seed=0))
        deep = random_unitary_circuit(RandomIdentitySpec(4, 8, seed=0))
        assert len(deep) > len(shallow)

    def test_correct_outcome_helper(self):
        assert identity_correct_outcome(5) == "00000"
        with pytest.raises(CircuitError):
            identity_correct_outcome(0)
