"""Tests for GHZ circuit generation."""

from __future__ import annotations

import pytest

from repro.circuits import ghz_circuit, ghz_correct_outcomes
from repro.exceptions import CircuitError
from repro.quantum import ideal_distribution


class TestGhz:
    @pytest.mark.parametrize("num_qubits", [2, 3, 5, 8])
    def test_ideal_output_is_equal_superposition(self, num_qubits):
        dist = ideal_distribution(ghz_circuit(num_qubits))
        zeros, ones = ghz_correct_outcomes(num_qubits)
        assert dist.probability(zeros) == pytest.approx(0.5)
        assert dist.probability(ones) == pytest.approx(0.5)
        assert dist.num_outcomes == 2

    def test_star_variant_is_equivalent(self):
        chain = ideal_distribution(ghz_circuit(5, linear_chain=True))
        star = ideal_distribution(ghz_circuit(5, linear_chain=False))
        assert chain == star

    def test_chain_has_linear_cx_count(self):
        assert ghz_circuit(7).num_two_qubit_gates() == 6

    def test_chain_deeper_than_star_depth_structure(self):
        chain = ghz_circuit(8, linear_chain=True)
        star = ghz_circuit(8, linear_chain=False)
        assert chain.depth() >= star.depth()

    def test_correct_outcomes(self):
        assert ghz_correct_outcomes(3) == ["000", "111"]

    def test_rejects_single_qubit(self):
        with pytest.raises(CircuitError):
            ghz_circuit(1)
        with pytest.raises(CircuitError):
            ghz_correct_outcomes(1)
