"""Tests for QFT circuits."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import qft_basis_state_circuit, qft_circuit
from repro.exceptions import CircuitError
from repro.quantum import ideal_distribution, simulate_statevector


class TestQft:
    def test_qft_on_zero_state_is_uniform(self):
        dist = ideal_distribution(qft_circuit(3))
        for outcome in dist.outcomes():
            assert dist.probability(outcome) == pytest.approx(1 / 8, abs=1e-9)

    def test_qft_amplitudes_are_fourier_phases(self):
        num_qubits = 3
        circuit = qft_circuit(num_qubits, include_swaps=True)
        # Prepare |001> = integer 1, apply QFT, expect amplitudes exp(2*pi*i*k/8)/sqrt(8).
        prep = qft_circuit(num_qubits, include_swaps=True)
        from repro.quantum import QuantumCircuit

        full = QuantumCircuit(num_qubits)
        full.x(2)
        full = full.compose(circuit)
        state = simulate_statevector(full)
        amplitudes = state.vector
        expected = np.array([np.exp(2j * np.pi * k / 8) for k in range(8)]) / np.sqrt(8)
        phase = amplitudes[0] / expected[0]
        assert np.allclose(amplitudes, expected * phase, atol=1e-8)

    def test_every_pair_interacts(self):
        circuit = qft_circuit(4, include_swaps=False)
        assert len(circuit.interaction_pairs()) == 6

    def test_rejects_nonpositive_width(self):
        with pytest.raises(CircuitError):
            qft_circuit(0)


class TestQftRoundTrip:
    @pytest.mark.parametrize("bitstring", ["000", "101", "0110", "11111"])
    def test_round_trip_recovers_input(self, bitstring):
        dist = ideal_distribution(qft_basis_state_circuit(bitstring))
        assert dist.probability(bitstring) == pytest.approx(1.0, abs=1e-8)

    def test_rejects_bad_input(self):
        with pytest.raises(CircuitError):
            qft_basis_state_circuit("01a")
        with pytest.raises(CircuitError):
            qft_basis_state_circuit("")
