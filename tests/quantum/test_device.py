"""Tests for simulated device profiles."""

from __future__ import annotations

import pytest

from repro.exceptions import DeviceError
from repro.quantum import (
    DeviceProfile,
    available_devices,
    get_device,
    google_sycamore,
    ibm_manhattan,
    ibm_paris,
    ibm_toronto,
    linear_coupling,
)
from repro.quantum.noise import NoiseModel


class TestBuiltInDevices:
    def test_available_devices(self):
        names = available_devices()
        assert "ibm-paris" in names
        assert "google-sycamore" in names
        assert len(names) == 4

    def test_get_device(self):
        device = get_device("IBM-Paris")
        assert device.name == "ibm-paris"
        assert device.num_qubits == 27

    def test_get_device_unknown(self):
        with pytest.raises(DeviceError):
            get_device("ibm-osprey")

    def test_ibm_devices_have_distinct_noise(self):
        paris, manhattan, toronto = ibm_paris(), ibm_manhattan(), ibm_toronto()
        two_qubit_errors = {
            paris.noise_model.two_qubit_error,
            manhattan.noise_model.two_qubit_error,
            toronto.noise_model.two_qubit_error,
        }
        assert len(two_qubit_errors) == 3

    def test_error_rates_in_paper_range(self):
        for factory in (ibm_paris, ibm_manhattan, ibm_toronto, google_sycamore):
            device = factory()
            assert 0.0005 <= device.noise_model.single_qubit_error <= 0.005
            assert 0.005 <= device.noise_model.two_qubit_error <= 0.03
            assert 0.005 <= device.noise_model.readout_error.prob_1_given_0 <= 0.05

    def test_sycamore_is_grid_with_cz_basis(self):
        device = google_sycamore()
        assert "cz" in device.basis_gates
        assert device.coupling_map.name.startswith("grid")

    def test_ibm_devices_use_cx_basis(self):
        assert "cx" in ibm_paris().basis_gates

    def test_supports_circuit_width(self):
        device = ibm_paris()
        assert device.supports_circuit_width(20)
        assert not device.supports_circuit_width(100)


class TestDeviceProfileValidation:
    def test_rejects_size_mismatch(self):
        with pytest.raises(DeviceError):
            DeviceProfile(
                name="broken",
                num_qubits=10,
                coupling_map=linear_coupling(5),
                noise_model=NoiseModel(),
            )
