"""Tests for the gate library: unitarity, registry behaviour, known matrices."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.quantum.gates import (
    GATE_REGISTRY,
    controlled_gate_matrix,
    gate_definition,
    gate_matrix,
    is_parametric_gate,
    is_two_qubit_gate,
)

angles = st.floats(min_value=-2 * np.pi, max_value=2 * np.pi, allow_nan=False)


def _is_unitary(matrix: np.ndarray) -> bool:
    return np.allclose(matrix @ matrix.conj().T, np.eye(matrix.shape[0]), atol=1e-10)


class TestRegistry:
    def test_all_fixed_gates_are_unitary(self):
        for name, definition in GATE_REGISTRY.items():
            if definition.num_params == 0:
                assert _is_unitary(definition.matrix()), f"{name} is not unitary"

    @given(angles)
    @settings(max_examples=25)
    def test_parametric_single_qubit_gates_are_unitary(self, theta):
        for name in ("rx", "ry", "rz", "p"):
            assert _is_unitary(gate_matrix(name, [theta]))

    @given(angles, angles, angles)
    @settings(max_examples=20)
    def test_u3_is_unitary(self, theta, phi, lam):
        assert _is_unitary(gate_matrix("u3", [theta, phi, lam]))

    @given(angles)
    @settings(max_examples=20)
    def test_two_qubit_parametric_gates_are_unitary(self, theta):
        assert _is_unitary(gate_matrix("rzz", [theta]))
        assert _is_unitary(gate_matrix("cp", [theta]))

    def test_unknown_gate_rejected(self):
        with pytest.raises(CircuitError):
            gate_definition("toffoli")

    def test_wrong_parameter_count_rejected(self):
        with pytest.raises(CircuitError):
            gate_matrix("rx", [])
        with pytest.raises(CircuitError):
            gate_matrix("h", [0.3])

    def test_case_insensitive_lookup(self):
        assert gate_definition("CX").name == "cx"


class TestKnownMatrices:
    def test_x_matrix(self):
        assert np.allclose(gate_matrix("x"), [[0, 1], [1, 0]])

    def test_h_squares_to_identity(self):
        h = gate_matrix("h")
        assert np.allclose(h @ h, np.eye(2), atol=1e-12)

    def test_sx_squares_to_x(self):
        sx = gate_matrix("sx")
        assert np.allclose(sx @ sx, gate_matrix("x"), atol=1e-12)

    def test_s_squares_to_z(self):
        s = gate_matrix("s")
        assert np.allclose(s @ s, gate_matrix("z"), atol=1e-12)

    def test_rz_pi_equals_z_up_to_phase(self):
        rz = gate_matrix("rz", [np.pi])
        z = gate_matrix("z")
        phase = rz[0, 0] / z[0, 0]
        assert np.allclose(rz, phase * z, atol=1e-12)

    def test_cx_action(self):
        cx = gate_matrix("cx")
        # |10> (control=1, target=0) -> |11>
        state = np.zeros(4)
        state[2] = 1.0
        assert np.allclose(cx @ state, [0, 0, 0, 1])

    def test_cz_is_diagonal(self):
        assert np.allclose(gate_matrix("cz"), np.diag([1, 1, 1, -1]))

    def test_swap_action(self):
        swap = gate_matrix("swap")
        state = np.zeros(4)
        state[1] = 1.0  # |01>
        assert np.allclose(swap @ state, [0, 0, 1, 0])  # -> |10>

    def test_rzz_diagonal_phases(self):
        theta = 0.8
        rzz = gate_matrix("rzz", [theta])
        assert np.allclose(np.diag(rzz), [
            np.exp(-1j * theta / 2),
            np.exp(1j * theta / 2),
            np.exp(1j * theta / 2),
            np.exp(-1j * theta / 2),
        ])


class TestHelpers:
    def test_is_two_qubit_gate(self):
        assert is_two_qubit_gate("cx")
        assert not is_two_qubit_gate("h")

    def test_is_parametric_gate(self):
        assert is_parametric_gate("rx")
        assert not is_parametric_gate("x")

    def test_controlled_gate_matrix(self):
        cx_built = controlled_gate_matrix(gate_matrix("x"))
        assert np.allclose(cx_built, gate_matrix("cx"))

    def test_controlled_gate_matrix_rejects_bad_shape(self):
        with pytest.raises(CircuitError):
            controlled_gate_matrix(np.eye(4))
