"""Tests for entanglement entropy utilities."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.quantum import (
    QuantumCircuit,
    Statevector,
    entanglement_entropy,
    meyer_wallach_entanglement,
    reduced_density_matrix,
    simulate_statevector,
    von_neumann_entropy,
)


def bell_state() -> Statevector:
    circuit = QuantumCircuit(2)
    circuit.h(0).cx(0, 1)
    return simulate_statevector(circuit)


def product_state(num_qubits: int = 3) -> Statevector:
    circuit = QuantumCircuit(num_qubits)
    circuit.h(0).x(1)
    return simulate_statevector(circuit)


class TestReducedDensityMatrix:
    def test_bell_reduced_state_is_maximally_mixed(self):
        rho = reduced_density_matrix(bell_state(), [0])
        assert np.allclose(rho, np.eye(2) / 2, atol=1e-10)

    def test_product_state_reduced_is_pure(self):
        rho = reduced_density_matrix(product_state(), [1])
        assert np.allclose(rho, np.array([[0, 0], [0, 1]]), atol=1e-10)

    def test_keep_all_qubits(self):
        state = product_state(2)
        rho = reduced_density_matrix(state, [0, 1])
        assert rho.shape == (4, 4)
        assert np.trace(rho).real == pytest.approx(1.0)

    def test_trace_is_one(self):
        rho = reduced_density_matrix(bell_state(), [1])
        assert np.trace(rho).real == pytest.approx(1.0)

    def test_rejects_empty_subset(self):
        with pytest.raises(CircuitError):
            reduced_density_matrix(bell_state(), [])

    def test_rejects_out_of_range_qubit(self):
        with pytest.raises(CircuitError):
            reduced_density_matrix(bell_state(), [5])


class TestVonNeumannEntropy:
    def test_pure_state_has_zero_entropy(self):
        rho = np.array([[1, 0], [0, 0]], dtype=complex)
        assert von_neumann_entropy(rho) == pytest.approx(0.0)

    def test_maximally_mixed_qubit_has_one_bit(self):
        assert von_neumann_entropy(np.eye(2) / 2) == pytest.approx(1.0)

    def test_rejects_non_square(self):
        with pytest.raises(CircuitError):
            von_neumann_entropy(np.ones((2, 3)))


class TestEntanglementEntropy:
    def test_bell_state_has_one_bit(self):
        assert entanglement_entropy(bell_state(), [0]) == pytest.approx(1.0)

    def test_product_state_has_zero(self):
        assert entanglement_entropy(product_state(), [0]) == pytest.approx(0.0, abs=1e-9)

    def test_default_partition(self):
        ghz = QuantumCircuit(4)
        ghz.h(0)
        for qubit in range(3):
            ghz.cx(qubit, qubit + 1)
        state = simulate_statevector(ghz)
        assert entanglement_entropy(state) == pytest.approx(1.0)

    def test_entropy_grows_with_entangling_gates(self):
        shallow = QuantumCircuit(4)
        shallow.h(0)
        deep = QuantumCircuit(4)
        deep.h(0).h(1).h(2).h(3).cx(0, 1).cx(2, 3).cz(1, 2).rx(0.7, 0).cx(0, 2)
        entropy_shallow = entanglement_entropy(simulate_statevector(shallow))
        entropy_deep = entanglement_entropy(simulate_statevector(deep))
        assert entropy_deep > entropy_shallow


class TestMeyerWallach:
    def test_product_state_measure_is_zero(self):
        assert meyer_wallach_entanglement(product_state()) == pytest.approx(0.0, abs=1e-9)

    def test_ghz_measure_is_one(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2)
        assert meyer_wallach_entanglement(simulate_statevector(circuit)) == pytest.approx(1.0)

    def test_measure_in_unit_interval(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).ry(0.3, 2).cz(1, 2)
        value = meyer_wallach_entanglement(simulate_statevector(circuit))
        assert 0.0 <= value <= 1.0
