"""Tests for basis decomposition and SWAP routing."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import TranspilerError
from repro.quantum import (
    QuantumCircuit,
    decompose_to_basis,
    grid_coupling,
    ibm_paris,
    linear_coupling,
    route_circuit,
    simulate_statevector,
    transpile,
)

IBM_BASIS = ("rz", "sx", "x", "cx")
SYCAMORE_BASIS = ("rz", "sx", "x", "cz")


def random_circuit(seed: int, num_qubits: int = 4, num_gates: int = 12) -> QuantumCircuit:
    rng = np.random.default_rng(seed)
    circuit = QuantumCircuit(num_qubits)
    single = ["h", "x", "y", "z", "s", "t", "sx", "rx", "ry", "rz", "p", "u3"]
    double = ["cx", "cz", "swap", "rzz", "cp"]
    for _ in range(num_gates):
        if rng.random() < 0.6:
            gate = str(rng.choice(single))
            qubit = int(rng.integers(0, num_qubits))
            num_params = {"rx": 1, "ry": 1, "rz": 1, "p": 1, "u3": 3}.get(gate, 0)
            circuit.append(gate, [qubit], [float(rng.uniform(0, 2 * np.pi)) for _ in range(num_params)])
        else:
            a, b = rng.choice(num_qubits, size=2, replace=False)
            gate = str(rng.choice(double))
            params = [float(rng.uniform(0, 2 * np.pi))] if gate in ("rzz", "cp") else []
            circuit.append(gate, [int(a), int(b)], params)
    return circuit


def assert_same_output_distribution(first: QuantumCircuit, second: QuantumCircuit) -> None:
    p1 = simulate_statevector(first).probabilities()
    p2 = simulate_statevector(second).probabilities()
    assert np.allclose(p1, p2, atol=1e-8)


class TestBasisDecomposition:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_ibm_basis_preserves_output(self, seed):
        circuit = random_circuit(seed)
        decomposed = decompose_to_basis(circuit, IBM_BASIS)
        assert set(inst.name for inst in decomposed) <= set(IBM_BASIS) | {"id"}
        assert_same_output_distribution(circuit, decomposed)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_sycamore_basis_preserves_output(self, seed):
        circuit = random_circuit(seed)
        decomposed = decompose_to_basis(circuit, SYCAMORE_BASIS)
        assert set(inst.name for inst in decomposed) <= set(SYCAMORE_BASIS) | {"id"}
        assert_same_output_distribution(circuit, decomposed)

    def test_decomposition_increases_gate_count(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).swap(0, 1)
        decomposed = decompose_to_basis(circuit, IBM_BASIS)
        assert len(decomposed) > len(circuit)


class TestRouting:
    def test_adjacent_gates_need_no_swaps(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1).cx(1, 2)
        routed = route_circuit(circuit, linear_coupling(3))
        assert routed.num_swaps == 0
        assert routed.final_layout == (0, 1, 2)

    def test_distant_gate_inserts_swaps(self):
        circuit = QuantumCircuit(4)
        circuit.cx(0, 3)
        routed = route_circuit(circuit, linear_coupling(4))
        assert routed.num_swaps == 2
        # Every two-qubit gate in the routed circuit respects the coupling map.
        cmap = linear_coupling(4)
        for instruction in routed.circuit:
            if instruction.num_qubits == 2:
                assert cmap.are_coupled(*instruction.qubits)

    def test_routing_preserves_semantics_after_unpermutation(self):
        circuit = QuantumCircuit(4)
        circuit.x(0).cx(0, 3).cx(3, 1)
        routed = route_circuit(circuit, linear_coupling(4))
        original = simulate_statevector(circuit).measurement_distribution()
        physical = simulate_statevector(routed.circuit).measurement_distribution()
        recovered = physical.mapped(routed.measurement_permutation())
        assert recovered == original

    def test_routing_on_larger_device_restricts_width(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        routed = route_circuit(circuit, grid_coupling(3, 3))
        assert routed.circuit.num_qubits == 3

    def test_rejects_circuit_wider_than_device(self):
        with pytest.raises(TranspilerError):
            route_circuit(QuantumCircuit(5), linear_coupling(3))


class TestFullTranspile:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_transpile_preserves_semantics(self, seed):
        circuit = random_circuit(seed, num_qubits=4, num_gates=10)
        device = ibm_paris()
        transpiled = transpile(circuit, coupling_map=device.coupling_map, basis_gates=device.basis_gates)
        original = simulate_statevector(circuit).measurement_distribution()
        physical = simulate_statevector(transpiled.circuit).measurement_distribution()
        recovered = physical.mapped(transpiled.measurement_permutation())
        for outcome in original.outcomes():
            assert recovered.probability(outcome) == pytest.approx(
                original.probability(outcome), abs=1e-7
            )

    def test_transpile_without_coupling_map(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        transpiled = transpile(circuit, basis_gates=IBM_BASIS)
        assert transpiled.num_swaps == 0
        assert set(inst.name for inst in transpiled.circuit) <= set(IBM_BASIS)

    def test_transpile_without_basis(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        transpiled = transpile(circuit, coupling_map=linear_coupling(3))
        assert transpiled.num_swaps > 0
        assert any(inst.name == "swap" for inst in transpiled.circuit)

    def test_grid_native_qaoa_needs_no_swaps(self):
        """Hardware-grid interactions route without SWAPs (the paper's Sycamore advantage)."""
        from repro.circuits import default_qaoa_parameters, qaoa_circuit
        from repro.maxcut import grid_graph_problem

        problem = grid_graph_problem(9)
        circuit = qaoa_circuit(problem, default_qaoa_parameters(1))
        routed = route_circuit(circuit, grid_coupling(3, 3))
        assert routed.num_swaps == 0
