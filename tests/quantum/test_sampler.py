"""Tests for the noisy samplers (trajectory and bit-flip models)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits import bernstein_vazirani, ghz_circuit
from repro.core import Distribution
from repro.exceptions import CircuitError, NoiseModelError
from repro.quantum import (
    NoiseModel,
    NoisySampler,
    QuantumCircuit,
    ReadoutError,
    apply_readout_errors,
    sample_bitflip_distribution,
    sample_noisy_distribution,
    sample_trajectory_distribution,
)


@pytest.fixture
def bv4():
    return bernstein_vazirani("1111")


@pytest.fixture
def mild_noise():
    return NoiseModel(
        single_qubit_error=0.002,
        two_qubit_error=0.02,
        readout_error=ReadoutError(0.02, 0.04),
        idle_error_per_layer=0.001,
    )


class TestReadoutApplication:
    def test_no_error_is_identity(self):
        samples = ["010", "111"]
        model = NoiseModel.noiseless()
        assert apply_readout_errors(samples, model, np.random.default_rng(0)) == samples

    def test_full_error_flips_every_bit(self):
        samples = ["0000", "1111"]
        model = NoiseModel(readout_error=ReadoutError(1.0, 1.0))
        flipped = apply_readout_errors(samples, model, np.random.default_rng(0))
        assert flipped == ["1111", "0000"]

    def test_empty_samples(self):
        assert apply_readout_errors([], NoiseModel(), np.random.default_rng(0)) == []


class TestBitflipSampler:
    def test_noiseless_sampling_recovers_ideal(self, bv4):
        dist = sample_bitflip_distribution(bv4, NoiseModel.noiseless(), shots=2000,
                                           rng=np.random.default_rng(0))
        assert dist.probability("1111") == pytest.approx(1.0)

    def test_noisy_sampling_keeps_correct_dominant(self, bv4, mild_noise):
        dist = sample_bitflip_distribution(bv4, mild_noise, shots=4000, rng=np.random.default_rng(1))
        assert dist.most_probable() == "1111"
        assert 0.5 < dist.probability("1111") < 1.0

    def test_reuses_precomputed_ideal(self, bv4, mild_noise):
        ideal = Distribution({"1111": 1.0})
        dist = sample_bitflip_distribution(
            bv4, mild_noise, shots=2000, rng=np.random.default_rng(2), ideal=ideal
        )
        assert dist.num_bits == 4

    def test_total_weight_equals_shots(self, bv4, mild_noise):
        dist = sample_bitflip_distribution(bv4, mild_noise, shots=1234, rng=np.random.default_rng(3))
        assert dist.total_weight == pytest.approx(1234)

    def test_rejects_nonpositive_shots(self, bv4, mild_noise):
        with pytest.raises(CircuitError):
            sample_bitflip_distribution(bv4, mild_noise, shots=0)


class TestTrajectorySampler:
    def test_noiseless_trajectories_recover_ideal(self, bv4):
        dist = sample_trajectory_distribution(
            bv4, NoiseModel.noiseless(), shots=500, rng=np.random.default_rng(0), max_trajectories=8
        )
        assert dist.probability("1111") == pytest.approx(1.0)

    def test_noisy_trajectories_produce_errors(self):
        circuit = ghz_circuit(4)
        model = NoiseModel(single_qubit_error=0.05, two_qubit_error=0.1,
                           readout_error=ReadoutError(0.05, 0.05))
        dist = sample_trajectory_distribution(
            circuit, model, shots=800, rng=np.random.default_rng(1), max_trajectories=16
        )
        assert dist.num_outcomes > 2  # errors produced outcomes beyond the GHZ pair
        assert dist.total_weight == pytest.approx(800)

    def test_errors_cluster_near_correct_outcomes(self, mild_noise):
        circuit = bernstein_vazirani("10101")
        dist = sample_trajectory_distribution(
            circuit, mild_noise, shots=1000, rng=np.random.default_rng(2), max_trajectories=20
        )
        from repro.core import expected_hamming_distance

        assert expected_hamming_distance(dist, ["10101"]) < 2.5  # well below uniform (2.5 = n/2)

    def test_rejects_bad_trajectory_count(self, bv4, mild_noise):
        with pytest.raises(NoiseModelError):
            sample_trajectory_distribution(bv4, mild_noise, shots=10, max_trajectories=0)


class TestDispatchAndSampler:
    def test_dispatch_bitflip(self, bv4, mild_noise):
        dist = sample_noisy_distribution(bv4, mild_noise, shots=500, method="bitflip",
                                         rng=np.random.default_rng(0))
        assert dist.num_bits == 4

    def test_dispatch_trajectory(self, bv4, mild_noise):
        dist = sample_noisy_distribution(bv4, mild_noise, shots=100, method="trajectory",
                                         rng=np.random.default_rng(0))
        assert dist.num_bits == 4

    def test_dispatch_rejects_unknown_method(self, bv4, mild_noise):
        with pytest.raises(NoiseModelError):
            sample_noisy_distribution(bv4, mild_noise, shots=100, method="exact")

    def test_noisy_sampler_reproducible(self, bv4, mild_noise):
        first = NoisySampler(mild_noise, shots=1000, seed=42).run(bv4)
        second = NoisySampler(mild_noise, shots=1000, seed=42).run(bv4)
        assert first == second

    def test_noisy_sampler_run_ideal(self, bv4, mild_noise):
        sampler = NoisySampler(mild_noise, shots=100, seed=0)
        assert sampler.run_ideal(bv4).probability("1111") == pytest.approx(1.0)

    def test_noisy_sampler_rejects_bad_shots(self, mild_noise):
        with pytest.raises(CircuitError):
            NoisySampler(mild_noise, shots=0)
