"""Tests for coupling maps."""

from __future__ import annotations

import pytest

from repro.exceptions import DeviceError
from repro.quantum import (
    CouplingMap,
    full_coupling,
    grid_coupling,
    heavy_hex_like_coupling,
    linear_coupling,
    ring_coupling,
    sycamore_like_coupling,
)


class TestCouplingMap:
    def test_rejects_nonpositive_size(self):
        with pytest.raises(DeviceError):
            CouplingMap(0, [])

    def test_rejects_out_of_range_edge(self):
        with pytest.raises(DeviceError):
            CouplingMap(2, [(0, 2)])

    def test_rejects_self_loop(self):
        with pytest.raises(DeviceError):
            CouplingMap(2, [(1, 1)])

    def test_rejects_disconnected(self):
        with pytest.raises(DeviceError):
            CouplingMap(4, [(0, 1), (2, 3)], name="split")

    def test_are_coupled_and_neighbors(self):
        cmap = linear_coupling(4)
        assert cmap.are_coupled(0, 1)
        assert not cmap.are_coupled(0, 2)
        assert cmap.neighbors(1) == [0, 2]

    def test_distance_and_path(self):
        cmap = linear_coupling(5)
        assert cmap.distance(0, 4) == 4
        path = cmap.shortest_path(0, 3)
        assert path[0] == 0 and path[-1] == 3
        assert len(path) == 4


class TestTopologies:
    def test_linear(self):
        cmap = linear_coupling(6)
        assert len(cmap.edges()) == 5

    def test_ring(self):
        cmap = ring_coupling(6)
        assert len(cmap.edges()) == 6
        assert cmap.are_coupled(0, 5)

    def test_ring_rejects_small(self):
        with pytest.raises(DeviceError):
            ring_coupling(2)

    def test_grid(self):
        cmap = grid_coupling(3, 4)
        assert cmap.num_qubits == 12
        assert len(cmap.edges()) == 3 * 3 + 2 * 4  # horizontal + vertical edges

    def test_grid_rejects_bad_dims(self):
        with pytest.raises(DeviceError):
            grid_coupling(0, 3)

    def test_heavy_hex_like(self):
        cmap = heavy_hex_like_coupling(27)
        assert cmap.num_qubits == 27
        assert len(cmap.edges()) > 26  # chain plus bridges

    def test_sycamore_like_exact_square(self):
        cmap = sycamore_like_coupling(9)
        assert cmap.num_qubits == 9

    def test_sycamore_like_non_square(self):
        cmap = sycamore_like_coupling(7)
        assert cmap.num_qubits == 7
        # still connected (constructor would raise otherwise)
        assert cmap.distance(0, 6) >= 1

    def test_full_coupling(self):
        cmap = full_coupling(5)
        assert len(cmap.edges()) == 10
        assert all(cmap.are_coupled(a, b) for a in range(5) for b in range(5) if a != b)
