"""Tests for noise channels and noise models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import NoiseModelError
from repro.quantum import NoiseModel, PauliNoise, QuantumCircuit, ReadoutError
from repro.quantum.circuit import Instruction


class TestReadoutError:
    def test_flip_probability(self):
        error = ReadoutError(prob_1_given_0=0.01, prob_0_given_1=0.05)
        assert error.flip_probability("0") == 0.01
        assert error.flip_probability("1") == 0.05

    def test_confusion_matrix_columns_sum_to_one(self):
        matrix = ReadoutError(0.02, 0.07).confusion_matrix()
        assert np.allclose(matrix.sum(axis=0), [1.0, 1.0])

    def test_symmetric_constructor(self):
        error = ReadoutError.symmetric(0.03)
        assert error.prob_1_given_0 == error.prob_0_given_1 == 0.03

    def test_rejects_out_of_range(self):
        with pytest.raises(NoiseModelError):
            ReadoutError(1.5, 0.0)


class TestPauliNoise:
    def test_depolarizing_split(self):
        channel = PauliNoise.depolarizing(0.03)
        assert channel.error_probability == pytest.approx(0.03)
        assert channel.bitflip_probability == pytest.approx(0.02)

    def test_rejects_negative(self):
        with pytest.raises(NoiseModelError):
            PauliNoise(-0.1, 0.0, 0.0)

    def test_rejects_sum_above_one(self):
        with pytest.raises(NoiseModelError):
            PauliNoise(0.5, 0.5, 0.5)

    def test_depolarizing_rejects_out_of_range(self):
        with pytest.raises(NoiseModelError):
            PauliNoise.depolarizing(1.5)

    def test_sample_statistics(self):
        channel = PauliNoise(prob_x=0.3, prob_y=0.0, prob_z=0.0)
        rng = np.random.default_rng(0)
        draws = [channel.sample(rng) for _ in range(5000)]
        x_fraction = sum(1 for d in draws if d == "x") / len(draws)
        assert x_fraction == pytest.approx(0.3, abs=0.03)
        assert all(d in (None, "x") for d in draws)

    def test_sample_zero_error_never_fires(self):
        channel = PauliNoise.depolarizing(0.0)
        rng = np.random.default_rng(1)
        assert all(channel.sample(rng) is None for _ in range(100))


class TestNoiseModel:
    @pytest.fixture
    def circuit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2)
        return circuit

    def test_gate_error_distinguishes_arity(self):
        model = NoiseModel(single_qubit_error=0.001, two_qubit_error=0.02)
        assert model.gate_error(Instruction("h", (0,))) == 0.001
        assert model.gate_error(Instruction("cx", (0, 1))) == 0.02

    def test_rejects_out_of_range_rates(self):
        with pytest.raises(NoiseModelError):
            NoiseModel(single_qubit_error=2.0)

    def test_sample_error_instructions_positions_valid(self, circuit):
        model = NoiseModel(single_qubit_error=0.5, two_qubit_error=0.5)
        errors = model.sample_error_instructions(circuit, np.random.default_rng(0))
        assert errors, "with 50% error rates some errors must be sampled"
        for position, instruction in errors:
            assert 0 <= position < len(circuit)
            assert instruction.name in ("x", "y", "z")

    def test_noiseless_model_samples_no_errors(self, circuit):
        model = NoiseModel.noiseless()
        assert model.sample_error_instructions(circuit, np.random.default_rng(0)) == []

    def test_accumulated_bitflip_probabilities(self, circuit):
        model = NoiseModel(single_qubit_error=0.01, two_qubit_error=0.05, idle_error_per_layer=0.0)
        flips = model.accumulated_bitflip_probabilities(circuit)
        assert flips.shape == (3,)
        assert np.all(flips > 0)
        assert np.all(flips < 1)
        # Qubit 1 touches two CX gates; qubit 0 touches one CX and one H.
        assert flips[1] > flips[0]

    def test_accumulated_bitflips_zero_for_noiseless(self, circuit):
        assert np.allclose(NoiseModel.noiseless().accumulated_bitflip_probabilities(circuit), 0.0)

    def test_scramble_probability_grows_with_two_qubit_gates(self, circuit):
        model = NoiseModel(two_qubit_error=0.02)
        small = model.scramble_probability(circuit)
        deeper = circuit.copy()
        for _ in range(10):
            deeper.cx(0, 1)
        assert model.scramble_probability(deeper) > small

    def test_readout_flip_probabilities_shape(self):
        model = NoiseModel(readout_error=ReadoutError(0.01, 0.04))
        p10, p01 = model.readout_flip_probabilities(5)
        assert p10.shape == p01.shape == (5,)
        assert np.all(p10 == 0.01)
        assert np.all(p01 == 0.04)

    def test_scaled(self):
        model = NoiseModel(single_qubit_error=0.01, two_qubit_error=0.02)
        scaled = model.scaled(2.0)
        assert scaled.single_qubit_error == pytest.approx(0.02)
        assert scaled.two_qubit_error == pytest.approx(0.04)
        assert scaled.readout_error.prob_1_given_0 == pytest.approx(
            min(1.0, model.readout_error.prob_1_given_0 * 2)
        )

    def test_scaled_caps_at_one(self):
        model = NoiseModel(two_qubit_error=0.6)
        assert model.scaled(3.0).two_qubit_error == 1.0

    def test_scaled_rejects_negative(self):
        with pytest.raises(NoiseModelError):
            NoiseModel().scaled(-1.0)


class TestCalibratedNoiseModel:
    """Per-qubit/per-edge behaviour when a CalibrationSnapshot is attached."""

    @pytest.fixture
    def circuit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2)
        return circuit

    @pytest.fixture
    def calibrated(self):
        from repro.calibration import synthetic_snapshot
        from repro.quantum.device import ibm_paris

        device = ibm_paris()
        snapshot = synthetic_snapshot(device, seed=9, spread=0.5)
        return device.noise_model.with_calibration(snapshot)

    def test_with_calibration_round_trip(self, calibrated):
        assert calibrated.is_calibrated
        assert not calibrated.with_calibration(None).is_calibrated

    def test_gate_error_reads_per_edge_and_per_qubit_rates(self, calibrated):
        snapshot = calibrated.calibration
        assert calibrated.gate_error(Instruction("cx", (0, 1))) == snapshot.edge_error(0, 1)
        assert calibrated.gate_error(Instruction("h", (2,))) == snapshot.single_qubit_error[2]

    def test_readout_flip_probabilities_are_heterogeneous(self, calibrated):
        p10, p01 = calibrated.readout_flip_probabilities(5)
        assert len(set(p10.tolist())) > 1
        assert np.all(p10 == calibrated.calibration.p10[:5])
        assert np.all(p01 == calibrated.calibration.p01[:5])

    def test_accumulated_bitflips_differ_from_uniform(self, calibrated, circuit):
        from repro.quantum.device import ibm_paris

        uniform = ibm_paris().noise_model.accumulated_bitflip_probabilities(circuit)
        heterogeneous = calibrated.accumulated_bitflip_probabilities(circuit)
        assert heterogeneous.shape == uniform.shape
        assert not np.allclose(uniform, heterogeneous)

    def test_uniform_snapshot_matches_scalar_model(self, circuit):
        from repro.calibration import uniform_snapshot
        from repro.quantum.device import ibm_paris

        device = ibm_paris()
        flat = device.noise_model.with_calibration(uniform_snapshot(device))
        assert np.allclose(
            flat.accumulated_bitflip_probabilities(circuit),
            device.noise_model.accumulated_bitflip_probabilities(circuit),
        )
        assert flat.scramble_probability(circuit) == pytest.approx(
            device.noise_model.scramble_probability(circuit)
        )

    def test_scaled_scales_arrays_with_per_field_cap(self, calibrated):
        scaled = calibrated.scaled(100.0)
        assert np.all(scaled.calibration.p01 <= 1.0)
        assert np.any(scaled.calibration.p01 == 1.0)
        small = calibrated.scaled(0.5)
        assert np.allclose(small.calibration.two_qubit_error,
                           calibrated.calibration.two_qubit_error * 0.5)

    def test_scaled_factor_zero_equals_noiseless(self, calibrated, circuit):
        zero = calibrated.scaled(0.0)
        noiseless = NoiseModel.noiseless()
        assert np.array_equal(
            zero.accumulated_bitflip_probabilities(circuit),
            noiseless.accumulated_bitflip_probabilities(circuit),
        )
        p10, p01 = zero.readout_flip_probabilities(3)
        assert np.all(p10 == 0.0) and np.all(p01 == 0.0)
        assert zero.scramble_probability(circuit) == 0.0
        assert zero.sample_error_instructions(circuit, np.random.default_rng(0)) == []

    def test_width_mismatch_raises_clearly(self, calibrated):
        wide = QuantumCircuit(calibrated.calibration.num_qubits + 1)
        wide.h(0)
        with pytest.raises(NoiseModelError, match="ibm-paris"):
            calibrated.accumulated_bitflip_probabilities(wide)
        with pytest.raises(NoiseModelError):
            calibrated.readout_flip_probabilities(calibrated.calibration.num_qubits + 1)

    def test_trajectory_errors_target_valid_positions(self, calibrated, circuit):
        scaled = calibrated.scaled(20.0)
        errors = scaled.sample_error_instructions(circuit, np.random.default_rng(0))
        assert errors
        for position, instruction in errors:
            assert 0 <= position < len(circuit)
            assert instruction.name in ("x", "y", "z")
