"""Tests for the QuantumCircuit IR."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CircuitError
from repro.quantum import QuantumCircuit, simulate_statevector
from repro.quantum.circuit import Instruction


class TestConstruction:
    def test_rejects_nonpositive_width(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(0)

    def test_append_and_len(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        assert len(circuit) == 2
        assert circuit.instructions[0].name == "h"

    def test_append_rejects_out_of_range_qubit(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).x(2)

    def test_append_rejects_duplicate_qubits(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).cx(1, 1)

    def test_append_rejects_wrong_arity(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).append("cx", [0])

    def test_append_rejects_wrong_param_count(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(1).append("rx", [0], [])

    def test_all_convenience_methods(self):
        circuit = QuantumCircuit(3)
        circuit.id(0).x(0).y(0).z(0).h(0).s(0).sdg(0).t(0).sx(0)
        circuit.rx(0.1, 0).ry(0.2, 1).rz(0.3, 2).p(0.4, 0).u3(0.1, 0.2, 0.3, 1)
        circuit.cx(0, 1).cz(1, 2).swap(0, 2).rzz(0.5, 0, 1).cp(0.6, 1, 2)
        circuit.barrier()
        assert len(circuit) == 19


class TestStructuralQueries:
    @pytest.fixture
    def ghzish(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).cx(0, 1).cx(1, 2).rz(0.3, 2)
        return circuit

    def test_gate_counts(self, ghzish):
        counts = ghzish.gate_counts()
        assert counts == {"h": 1, "cx": 2, "rz": 1}

    def test_two_qubit_gate_count(self, ghzish):
        assert ghzish.num_two_qubit_gates() == 2
        assert ghzish.num_single_qubit_gates() == 2

    def test_depth(self, ghzish):
        assert ghzish.depth() == 4

    def test_depth_parallel_gates(self):
        circuit = QuantumCircuit(4)
        circuit.h(0).h(1).h(2).h(3)
        assert circuit.depth() == 1

    def test_qubits_used(self, ghzish):
        assert ghzish.qubits_used() == {0, 1, 2}

    def test_gates_per_qubit(self, ghzish):
        assert ghzish.gates_per_qubit() == [2, 2, 2]

    def test_two_qubit_gates_per_qubit(self, ghzish):
        assert ghzish.two_qubit_gates_per_qubit() == [1, 2, 1]

    def test_interaction_pairs(self, ghzish):
        assert ghzish.interaction_pairs() == {(0, 1), (1, 2)}


class TestTransformations:
    def test_compose(self):
        first = QuantumCircuit(2)
        first.h(0)
        second = QuantumCircuit(2)
        second.cx(0, 1)
        combined = first.compose(second)
        assert [inst.name for inst in combined] == ["h", "cx"]

    def test_compose_rejects_width_mismatch(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).compose(QuantumCircuit(3))

    def test_copy_is_independent(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        duplicate = circuit.copy()
        duplicate.x(0)
        assert len(circuit) == 1
        assert len(duplicate) == 2

    def test_remapped(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        remapped = circuit.remapped([2, 1, 0])
        assert remapped.instructions[0].qubits == (2, 0)

    def test_remapped_rejects_bad_layout(self):
        with pytest.raises(CircuitError):
            QuantumCircuit(2).remapped([0, 0])

    def test_inverse_undoes_circuit(self):
        circuit = QuantumCircuit(3)
        circuit.h(0).t(1).s(2).rx(0.7, 0).ry(-0.2, 1).rz(1.1, 2)
        circuit.cx(0, 1).cz(1, 2).swap(0, 2).rzz(0.4, 0, 2).cp(0.9, 0, 1).u3(0.2, 0.5, -0.3, 1)
        round_trip = circuit.compose(circuit.inverse())
        state = simulate_statevector(round_trip)
        probabilities = state.probabilities()
        assert probabilities[0] == pytest.approx(1.0, abs=1e-9)

    def test_instruction_inverse_of_hermitian_gate(self):
        instruction = Instruction("cx", (0, 1))
        assert instruction.inverse() == instruction

    def test_instruction_inverse_negates_rotation(self):
        instruction = Instruction("rz", (0,), (0.5,))
        assert instruction.inverse().params == (-0.5,)

    def test_instruction_matrix_shape(self):
        assert Instruction("cx", (0, 1)).matrix().shape == (4, 4)
