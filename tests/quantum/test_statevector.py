"""Tests for the statevector simulator."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import CircuitError
from repro.quantum import QuantumCircuit, Statevector, ideal_distribution, simulate_statevector


class TestInitialState:
    def test_starts_in_all_zero(self):
        state = Statevector(3)
        assert state.probability("000") == pytest.approx(1.0)
        assert state.norm() == pytest.approx(1.0)

    def test_custom_initial_data(self):
        state = Statevector(1, data=np.array([0, 1]))
        assert state.probability("1") == pytest.approx(1.0)

    def test_rejects_bad_size(self):
        with pytest.raises(CircuitError):
            Statevector(2, data=np.ones(3))

    def test_rejects_too_many_qubits(self):
        with pytest.raises(CircuitError):
            Statevector(30)


class TestKnownCircuits:
    def test_x_flips_bit(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        state = simulate_statevector(circuit)
        assert state.probability("10") == pytest.approx(1.0)

    def test_bell_state(self):
        circuit = QuantumCircuit(2)
        circuit.h(0).cx(0, 1)
        probabilities = simulate_statevector(circuit).probabilities()
        assert probabilities[0b00] == pytest.approx(0.5)
        assert probabilities[0b11] == pytest.approx(0.5)

    def test_ghz_state(self):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        for qubit in range(3):
            circuit.cx(qubit, qubit + 1)
        dist = ideal_distribution(circuit)
        assert set(dist.outcomes()) == {"0000", "1111"}
        assert dist.probability("1111") == pytest.approx(0.5)

    def test_cx_respects_qubit_order(self):
        # Control = qubit 1, target = qubit 0.
        circuit = QuantumCircuit(2)
        circuit.x(1)
        circuit.cx(1, 0)
        state = simulate_statevector(circuit)
        assert state.probability("11") == pytest.approx(1.0)

    def test_superposition_phase_interference(self):
        circuit = QuantumCircuit(1)
        circuit.h(0).z(0).h(0)
        state = simulate_statevector(circuit)
        assert state.probability("1") == pytest.approx(1.0)

    def test_amplitude_access(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        state = simulate_statevector(circuit)
        assert abs(state.amplitude("00")) == pytest.approx(1 / np.sqrt(2))

    def test_amplitude_rejects_wrong_width(self):
        with pytest.raises(CircuitError):
            Statevector(2).amplitude("0")


class TestUnitarity:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_random_circuits_preserve_norm(self, seed):
        rng = np.random.default_rng(seed)
        num_qubits = int(rng.integers(2, 5))
        circuit = QuantumCircuit(num_qubits)
        for _ in range(15):
            if rng.random() < 0.6:
                gate = rng.choice(["h", "x", "rx", "rz", "ry", "t", "sx"])
                qubit = int(rng.integers(0, num_qubits))
                if gate in ("rx", "rz", "ry"):
                    circuit.append(gate, [qubit], [float(rng.uniform(0, 2 * np.pi))])
                else:
                    circuit.append(gate, [qubit])
            else:
                a, b = rng.choice(num_qubits, size=2, replace=False)
                circuit.append(rng.choice(["cx", "cz", "swap"]), [int(a), int(b)])
        state = simulate_statevector(circuit)
        assert state.norm() == pytest.approx(1.0, abs=1e-9)
        assert state.probabilities().sum() == pytest.approx(1.0, abs=1e-9)


class TestMeasurement:
    def test_measurement_distribution_matches_probabilities(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        dist = simulate_statevector(circuit).measurement_distribution()
        assert dist.probability("00") == pytest.approx(0.5)
        assert dist.probability("10") == pytest.approx(0.5)

    def test_sampling_matches_distribution(self):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        sampled = simulate_statevector(circuit).sample(20_000, rng=np.random.default_rng(1))
        assert sampled.probability("0") == pytest.approx(0.5, abs=0.02)

    def test_sample_rejects_nonpositive_shots(self):
        with pytest.raises(CircuitError):
            Statevector(1).sample(0)

    def test_sample_arrives_with_packed_view_cached(self):
        circuit = QuantumCircuit(3)
        for qubit in range(3):
            circuit.h(qubit)
        sampled = simulate_statevector(circuit).sample(4096, rng=np.random.default_rng(7))
        assert sampled.has_packed_view()
        assert sampled.total_weight == pytest.approx(4096)

    def test_sample_support_matches_multinomial_counts(self):
        # Same rng seed must produce exactly the counts of the multinomial
        # draw, keyed by MSB-first bitstrings of the support indices.
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)
        state = simulate_statevector(circuit)
        expected_counts = np.random.default_rng(3).multinomial(
            1000, state.probabilities() / state.probabilities().sum()
        )
        sampled = state.sample(1000, rng=np.random.default_rng(3))
        for index, count in enumerate(expected_counts):
            outcome = format(index, "02b")
            assert sampled.counts().get(outcome, 0.0) == pytest.approx(float(count))

    def test_apply_circuit_rejects_width_mismatch(self):
        state = Statevector(2)
        with pytest.raises(CircuitError):
            state.apply_circuit(QuantumCircuit(3))

    def test_apply_matrix_rejects_bad_shape(self):
        state = Statevector(2)
        with pytest.raises(CircuitError):
            state.apply_matrix(np.eye(3), [0])
