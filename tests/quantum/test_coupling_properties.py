"""Property tests for the coupling-map generators.

Every generator must produce a connected graph, report its edge list in
canonical sorted ``(min, max)`` order, and respect the degree bound of its
lattice family — invariants the router and the calibration subsystem (which
keys per-edge errors by canonical edge) both rely on.
"""

from __future__ import annotations

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quantum.coupling import (
    grid_coupling,
    heavy_hex_like_coupling,
    linear_coupling,
    ring_coupling,
    sycamore_like_coupling,
)


def _degrees(cmap) -> list[int]:
    return [degree for _, degree in cmap.graph.degree()]


def _assert_canonical_edges(cmap) -> None:
    edges = cmap.edges()
    assert edges == sorted(edges)
    assert all(a < b for a, b in edges)
    assert len(set(edges)) == len(edges)


@settings(max_examples=40, deadline=None)
@given(num_qubits=st.integers(min_value=2, max_value=80))
def test_linear_chain_properties(num_qubits):
    cmap = linear_coupling(num_qubits)
    _assert_canonical_edges(cmap)
    assert nx.is_connected(cmap.graph)
    assert len(cmap.edges()) == num_qubits - 1
    assert max(_degrees(cmap)) <= 2


@settings(max_examples=40, deadline=None)
@given(num_qubits=st.integers(min_value=3, max_value=80))
def test_ring_properties(num_qubits):
    cmap = ring_coupling(num_qubits)
    _assert_canonical_edges(cmap)
    assert nx.is_connected(cmap.graph)
    assert len(cmap.edges()) == num_qubits
    assert _degrees(cmap) == [2] * num_qubits


@settings(max_examples=40, deadline=None)
@given(rows=st.integers(min_value=1, max_value=9), columns=st.integers(min_value=1, max_value=9))
def test_grid_properties(rows, columns):
    cmap = grid_coupling(rows, columns)
    _assert_canonical_edges(cmap)
    assert cmap.num_qubits == rows * columns
    if cmap.num_qubits > 1:
        assert nx.is_connected(cmap.graph)
    assert len(cmap.edges()) == rows * (columns - 1) + columns * (rows - 1)
    # Interior lattice sites touch at most 4 neighbours.
    assert max(_degrees(cmap)) <= 4


@settings(max_examples=40, deadline=None)
@given(num_qubits=st.integers(min_value=2, max_value=80))
def test_heavy_hex_like_properties(num_qubits):
    cmap = heavy_hex_like_coupling(num_qubits)
    _assert_canonical_edges(cmap)
    assert nx.is_connected(cmap.graph)
    # Chain plus one bridge every 4 sites: a site has at most 2 chain
    # neighbours and 2 bridge neighbours.
    assert max(_degrees(cmap)) <= 4
    # Sparse by construction: strictly fewer edges than a 2-D grid of the
    # same size would have.
    assert len(cmap.edges()) <= num_qubits - 1 + (num_qubits - 1) // 4


@settings(max_examples=40, deadline=None)
@given(num_qubits=st.integers(min_value=1, max_value=80))
def test_sycamore_like_properties(num_qubits):
    cmap = sycamore_like_coupling(num_qubits)
    _assert_canonical_edges(cmap)
    assert cmap.num_qubits == num_qubits
    if num_qubits > 1:
        assert nx.is_connected(cmap.graph)
    assert max(_degrees(cmap), default=0) <= 4
