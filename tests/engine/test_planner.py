"""Tests for cost-model-driven engine planning: shards, workers, backends.

The invariants under test:

* **Precedence** — explicit env/constructor overrides beat the tuned
  profile, which beats the built-in heuristics.
* **Bit-identity** — when the tuned layout agrees with the heuristic one,
  the sample cache key (and therefore every histogram) is unchanged; a
  divergent tuned layout gets its own key namespace (the ``planner`` tag)
  and never collides with heuristic cache entries.
* **Provenance** — every decision is counted in
  ``EngineRunStats.planner_decisions`` and surfaced through
  ``attach_engine_meta``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import resolve_backend
from repro.circuits.bv import bernstein_vazirani
from repro.core import costmodel
from repro.core.costmodel import CostCurve, MachineProfile
from repro.engine import CircuitJob, ExecutionCache, ExecutionEngine
from repro.engine.hashing import sample_key
from repro.experiments.runner import ExperimentReport, attach_engine_meta
from repro.quantum.noise import NoiseModel


@pytest.fixture(autouse=True)
def _isolated_costmodel():
    costmodel.set_active_profile(None)
    costmodel.reset_decisions()
    yield
    costmodel.reset_active_profile()
    costmodel.reset_decisions()


def _profile(
    chunk_shots: float = 2_048.0,
    min_shots: float = 2_048.0,
    parallel_min_seconds: float = 0.0,
    backends: dict | None = None,
    sampler: CostCurve | None = None,
) -> MachineProfile:
    return MachineProfile(
        sampler=sampler
        if sampler is not None
        else CostCurve(terms=("shots_qubits", "shots", "1"), coefficients=(1e-8, 1e-7, 1e-4)),
        shard={"chunk_shots": chunk_shots, "min_shots": min_shots},
        engine={"parallel_min_seconds": parallel_min_seconds},
        backends=backends or {},
    )


def _job(job_id: str = "j0", shots: int = 1_024, width: int = 5, **kwargs) -> CircuitJob:
    return CircuitJob(
        job_id=job_id,
        circuit=bernstein_vazirani("1" * width),
        shots=shots,
        noise_model=NoiseModel(),
        **kwargs,
    )


class TestShardPrecedence:
    def test_env_override_beats_profile(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLE_SHARD_SHOTS", "5000")
        costmodel.set_active_profile(_profile(chunk_shots=1_024.0, min_shots=1_024.0))
        engine = ExecutionEngine()
        engine.run_single(_job(shots=8_192), seed=3)
        stats = engine.last_run_stats
        assert stats.sharded_jobs == 1
        assert stats.sample_shards == 2  # 5000 + 3192, the override layout
        assert stats.planner_decisions["shard"] == {"chunk:5000/override": 1}

    def test_constructor_argument_is_an_override(self):
        costmodel.set_active_profile(_profile(chunk_shots=1_024.0))
        engine = ExecutionEngine(sample_shard_shots=4_096)
        engine.run_single(_job(shots=8_192), seed=3)
        assert engine.last_run_stats.sample_shards == 2
        assert engine.last_run_stats.planner_decisions["shard"] == {
            "chunk:4096/override": 1
        }

    def test_profile_layout_when_no_override(self):
        costmodel.set_active_profile(_profile(chunk_shots=2_048.0, min_shots=2_048.0))
        engine = ExecutionEngine()
        result = engine.run_single(_job(shots=8_192), seed=3)
        stats = engine.last_run_stats
        assert stats.sharded_jobs == 1
        assert stats.sample_shards == 4
        assert stats.planner_decisions["shard"] == {"chunk:2048/profile": 1}
        assert sum(result.noisy.counts().values()) == 8_192

    def test_heuristic_without_profile(self):
        engine = ExecutionEngine()
        engine.run_single(_job(shots=8_192), seed=3)
        stats = engine.last_run_stats
        assert stats.sharded_jobs == 0
        assert stats.planner_decisions["shard"] == {"none/heuristic": 1}


class TestBitIdentity:
    def test_agreeing_layout_shares_cache_key_with_untuned(self):
        """Tuned run with heuristic-identical layout hits the untuned cache."""
        cache = ExecutionCache(None)
        ExecutionEngine(cache=cache).run_single(_job(shots=1_024), seed=7)
        # min_shots far above the job: the profile agrees with "unsharded".
        costmodel.set_active_profile(_profile(min_shots=1e9))
        tuned_engine = ExecutionEngine(cache=cache)
        tuned_engine.run_single(_job(shots=1_024), seed=7)
        assert tuned_engine.last_run_stats.sample_cache_hits == 1

    def test_divergent_layout_gets_own_cache_namespace(self):
        """A profile-divergent shard layout must never replay heuristic entries."""
        cache = ExecutionCache(None)
        untuned_engine = ExecutionEngine(cache=cache)
        untuned_result = untuned_engine.run_single(_job(shots=8_192), seed=7)
        costmodel.set_active_profile(_profile(chunk_shots=2_048.0, min_shots=2_048.0))
        tuned_engine = ExecutionEngine(cache=cache)
        tuned_result = tuned_engine.run_single(_job(shots=8_192), seed=7)
        assert tuned_engine.last_run_stats.sample_cache_hits == 0
        # Both draws are valid 8192-shot histograms; the layouts differ, so
        # the RNG stream layouts (and keys) differ too.
        assert sum(untuned_result.noisy.counts().values()) == 8_192
        assert sum(tuned_result.noisy.counts().values()) == 8_192
        # Re-running tuned replays the tuned entry exactly.
        replay_engine = ExecutionEngine(cache=cache)
        replay = replay_engine.run_single(_job(shots=8_192), seed=7)
        assert replay_engine.last_run_stats.sample_cache_hits == 1
        assert replay.noisy.counts() == tuned_result.noisy.counts()

    def test_planner_tag_changes_sample_key(self):
        circuit = bernstein_vazirani("10110")
        base = sample_key(circuit, NoiseModel(), 1_024, "bitflip", (0, 0))
        tagged = sample_key(
            circuit, NoiseModel(), 1_024, "bitflip", (0, 0), planner="cost-model"
        )
        assert base != tagged
        assert base == sample_key(circuit, NoiseModel(), 1_024, "bitflip", (0, 0), planner=None)

    def test_rows_identical_with_and_without_profile_across_workers(self):
        """A realistic tuned profile never changes results for any --jobs N."""
        jobs = [_job(job_id=f"j{i}", shots=2_048, width=4 + i) for i in range(3)]
        # Realistic tune output: sharding only far above these shot counts.
        profile = _profile(chunk_shots=131_072.0, min_shots=262_144.0)

        def counts(workers: int, tuned: bool):
            costmodel.set_active_profile(profile if tuned else None)
            try:
                with ExecutionEngine(max_workers=workers) as engine:
                    results = engine.run(list(jobs), seed=11)
                return [result.noisy.counts() for result in results]
            finally:
                costmodel.set_active_profile(None)

        baseline = counts(1, tuned=False)
        assert counts(2, tuned=False) == baseline
        assert counts(1, tuned=True) == baseline
        assert counts(2, tuned=True) == baseline


class TestWorkerPlanning:
    def test_small_batch_serialized_under_profile(self):
        costmodel.set_active_profile(
            _profile(min_shots=1e9, parallel_min_seconds=1e9)
        )
        with ExecutionEngine(max_workers=2) as engine:
            engine.run([_job(job_id="a"), _job(job_id="b", width=6)], seed=1)
            assert engine.last_run_stats.planner_decisions["workers"] == {"1/profile": 1}

    def test_large_predicted_work_keeps_requested_workers(self):
        costmodel.set_active_profile(
            _profile(min_shots=1e9, parallel_min_seconds=1e-9)
        )
        with ExecutionEngine(max_workers=2) as engine:
            engine.run([_job(job_id="a"), _job(job_id="b", width=6)], seed=1)
            assert engine.last_run_stats.planner_decisions["workers"] == {"2/profile": 1}

    def test_no_profile_or_no_curve_keeps_requested_workers(self):
        with ExecutionEngine(max_workers=2) as engine:
            engine.run([_job(job_id="a"), _job(job_id="b", width=6)], seed=1)
            assert engine.last_run_stats.planner_decisions["workers"] == {
                "2/heuristic": 1
            }
        costmodel.set_active_profile(
            MachineProfile(engine={"parallel_min_seconds": 1e9})
        )
        with ExecutionEngine(max_workers=2) as engine:
            engine.run([_job(job_id="a"), _job(job_id="b", width=6)], seed=1)
            assert engine.last_run_stats.planner_decisions["workers"] == {
                "2/heuristic": 1
            }


class TestBackendPlanning:
    def test_auto_prefers_profile_ranked_backend(self):
        circuit = bernstein_vazirani("101101")
        assert resolve_backend("auto", circuit).name == "stabilizer"
        costmodel.set_active_profile(
            _profile(
                backends={
                    "statevector": CostCurve(terms=("1",), coefficients=(1e-6,)),
                    "stabilizer": CostCurve(terms=("1",), coefficients=(1e-3,)),
                }
            )
        )
        assert resolve_backend("auto", circuit).name == "statevector"
        counts = costmodel.decision_counts()["backend"]
        assert counts["stabilizer/heuristic"] == 1
        assert counts["statevector/profile"] == 1

    def test_partial_ranking_falls_back_to_heuristic(self):
        circuit = bernstein_vazirani("101101")
        costmodel.set_active_profile(
            _profile(
                backends={"statevector": CostCurve(terms=("1",), coefficients=(1e-6,))}
            )
        )
        assert resolve_backend("auto", circuit).name == "stabilizer"

    def test_explicit_backend_ignores_profile(self):
        circuit = bernstein_vazirani("101101")
        costmodel.set_active_profile(
            _profile(
                backends={
                    "statevector": CostCurve(terms=("1",), coefficients=(1e-3,)),
                    "stabilizer": CostCurve(terms=("1",), coefficients=(1e-6,)),
                }
            )
        )
        assert resolve_backend("statevector", circuit).name == "statevector"


class TestPlannerProvenance:
    def test_attach_engine_meta_records_planner_block(self):
        engine = ExecutionEngine()
        engine.run([_job(job_id="a"), _job(job_id="b", width=6)], seed=2)
        report = attach_engine_meta(ExperimentReport(name="planner-test"), engine)
        planner = report.meta["planner"]
        assert planner["machine_profile"] == "heuristic"
        assert planner["engine"]["shard"] == {"none/heuristic": 2}
        assert "kernel" in planner["costmodel"] or planner["costmodel"] == {}
        assert report.meta["engine"]["planner_decisions"]["shard"] == {
            "none/heuristic": 2
        }

    def test_meta_carries_profile_fingerprint_when_tuned(self):
        profile = _profile(min_shots=1e9)
        costmodel.set_active_profile(profile)
        engine = ExecutionEngine()
        engine.run_single(_job(), seed=2)
        report = attach_engine_meta(ExperimentReport(name="planner-test"), engine)
        assert report.meta["planner"]["machine_profile"] == profile.fingerprint()

    def test_stats_accumulate_merges_decision_counters(self):
        engine = ExecutionEngine()
        engine.run_single(_job(job_id="a"), seed=2)
        engine.run_single(_job(job_id="b", width=6), seed=3)
        assert engine.lifetime_stats.planner_decisions["shard"] == {
            "none/heuristic": 2
        }
