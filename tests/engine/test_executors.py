"""Shard executor tests: selection, streaming, and bit-identity guarantees.

The load-bearing property: *which executor runs the chunks of a sharded
sampling job must be invisible in the results*.  Rows are bit-identical for
``--jobs 1/2/4`` and for every executor — including the loopback host
executor, which deliberately yields results out of submission order.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np
import pytest

from repro.circuits.bv import bernstein_vazirani
from repro.core import costmodel
from repro.engine import CircuitJob, ExecutionEngine
from repro.engine.executors import (
    LoopbackHostExecutor,
    ProcessPoolShardExecutor,
    SerialShardExecutor,
    resolve_shard_executor,
)
from repro.exceptions import EngineError
from repro.quantum.device import get_device


# Module-level so the process pool can pickle them by reference.
def _echo(task):
    return task


def _raise_on_marker(task):
    if task == "boom":
        raise ValueError("marker task failed")
    return task


def _sleepy_echo(task):
    time.sleep(0.05)
    return task


@pytest.fixture(scope="module")
def device():
    return get_device("ibm-paris")


def _sharded_run(device, **engine_kwargs):
    """One 40k-shot job sharded into 8k chunks; returns (distribution, stats)."""
    engine = ExecutionEngine(sample_shard_shots=8_192, **engine_kwargs)
    try:
        job = CircuitJob(
            job_id="shard-exec",
            circuit=bernstein_vazirani("10110"),
            shots=40_000,
            noise_model=device.noise_model,
        )
        result = engine.run([job], seed=7)[0]
        return result.noisy, engine.last_run_stats
    finally:
        engine.close()


class TestExecutorBitIdentity:
    def test_rows_bit_identical_across_jobs_and_executors(self, device):
        reference, _ = _sharded_run(device, max_workers=1)
        for workers in (1, 2, 4):
            for executor in ("serial", "loopback"):
                noisy, stats = _sharded_run(
                    device, max_workers=workers, shard_executor=executor
                )
                assert (
                    noisy.probabilities() == reference.probabilities()
                ), f"jobs={workers} executor={executor}"
        noisy, _ = _sharded_run(device, max_workers=4, shard_executor="process-pool")
        assert noisy.probabilities() == reference.probabilities()

    def test_executor_instance_accepted(self, device):
        reference, _ = _sharded_run(device, max_workers=1)
        noisy, stats = _sharded_run(
            device, max_workers=1, shard_executor=LoopbackHostExecutor()
        )
        assert noisy.probabilities() == reference.probabilities()
        assert stats.planner_decisions["shard-executor"] == {"loopback/override": 1}


class TestExecutorSelection:
    def test_env_override(self, device, monkeypatch):
        monkeypatch.setenv("REPRO_SHARD_EXECUTOR", "serial")
        _, stats = _sharded_run(device, max_workers=4)
        assert stats.planner_decisions["shard-executor"] == {"serial/override": 1}

    def test_auto_uses_pool_when_workers_allow(self, device):
        _, stats = _sharded_run(device, max_workers=4)
        assert stats.planner_decisions["shard-executor"] == {"process-pool/heuristic": 1}
        _, stats = _sharded_run(device, max_workers=1)
        assert stats.planner_decisions["shard-executor"] == {"serial/heuristic": 1}

    def test_unknown_name_rejected(self):
        with pytest.raises(EngineError, match="unknown shard executor"):
            ExecutionEngine(shard_executor="quantum-teleport")
        with pytest.raises(EngineError, match="unknown shard executor"):
            resolve_shard_executor("quantum-teleport", None)

    def test_process_pool_needs_workers(self):
        with pytest.raises(EngineError, match="max_workers > 1"):
            ExecutionEngine(max_workers=1, shard_executor="process-pool")
        with pytest.raises(EngineError, match="max_workers > 1"):
            resolve_shard_executor("process-pool", None)


class TestProcessPoolBookkeeping:
    """The in-flight bookkeeping fixes: sentinel, validation, and draining."""

    @pytest.fixture(scope="class")
    def pool(self):
        with ProcessPoolExecutor(max_workers=2) as pool:
            yield pool

    def test_none_and_falsy_tasks_do_not_truncate_batch(self, pool):
        # ``next(queue, None)`` + ``is None`` used to end the batch at the
        # first None task; falsy tasks probe the same class of bug.
        tasks = [None, 1, None, 0, "", 2, None]
        executor = ProcessPoolShardExecutor(pool, max_in_flight=2)
        results = list(executor.run(_echo, tasks))
        assert sorted(results, key=repr) == sorted(tasks, key=repr)

    def test_max_in_flight_zero_raises(self, pool):
        # An explicit 0 used to fall through the truthiness check to the
        # 4 x workers default; the documented contract is ``>= 1`` or error.
        with pytest.raises(EngineError, match="max_in_flight must be >= 1"):
            ProcessPoolShardExecutor(pool, max_in_flight=0)
        with pytest.raises(EngineError, match="max_in_flight must be >= 1"):
            ProcessPoolShardExecutor(pool, max_in_flight=-3)

    def test_max_in_flight_one_processes_every_task(self, pool):
        executor = ProcessPoolShardExecutor(pool, max_in_flight=1)
        assert sorted(executor.run(_echo, list(range(7)))) == list(range(7))

    def test_default_in_flight_window_from_pool_width(self, pool):
        assert ProcessPoolShardExecutor(pool)._max_in_flight == 8
        assert ProcessPoolShardExecutor(pool, max_in_flight=None)._max_in_flight == 8

    def test_abandoned_generator_leaves_pool_usable(self, pool):
        executor = ProcessPoolShardExecutor(pool, max_in_flight=4)
        generator = executor.run(_sleepy_echo, list(range(12)))
        assert next(generator) in range(12)
        # Abandon with futures still pending: close() must cancel/drain them
        # rather than strand work in the borrowed pool.
        generator.close()
        assert sorted(executor.run(_echo, list(range(5)))) == list(range(5))

    def test_worker_exception_drains_pending(self, pool):
        executor = ProcessPoolShardExecutor(pool, max_in_flight=4)
        with pytest.raises(ValueError, match="marker task failed"):
            list(executor.run(_raise_on_marker, ["boom"] + list(range(10))))
        # The raise above left no stranded futures: the pool still serves.
        assert sorted(executor.run(_echo, list(range(5)))) == list(range(5))


class TestHostExecutorProtocol:
    def test_loopback_yields_host_major_out_of_order(self):
        executor = LoopbackHostExecutor(hosts=("a", "b"))
        tasks = list(range(6))
        assert executor.placement(6) == ["a", "b", "a", "b", "a", "b"]
        results = list(executor.run(lambda task: task, tasks))
        # Host-major: host a's tasks first, then host b's — NOT 0..5.
        assert results == [0, 2, 4, 1, 3, 5]

    def test_serial_preserves_order(self):
        executor = SerialShardExecutor()
        assert list(executor.run(lambda task: task * 2, [1, 2, 3])) == [2, 4, 6]

    def test_empty_hosts_rejected(self):
        with pytest.raises(EngineError):
            LoopbackHostExecutor(hosts=())


class TestReductionStatsSurface:
    def test_run_stats_count_tree_work(self, device):
        _, stats = _sharded_run(device, max_workers=1)
        # 40_000 shots / 8_192 = 5 chunks -> 4 merges, depth 3.
        assert stats.sample_shards == 5
        assert stats.reduction_merges == 4
        assert stats.reduction_tree_depth == 3
        assert stats.reduction_peak_live_segments >= 2
        assert stats.merge_seconds >= 0.0
        as_dict = stats.as_dict()
        for key in (
            "reduction_merges",
            "reduction_tree_depth",
            "reduction_peak_live_segments",
            "merge_seconds",
        ):
            assert key in as_dict

    def test_planner_meta_reduction_block(self, device):
        from repro.experiments.runner import ExperimentReport, attach_engine_meta

        engine = ExecutionEngine(max_workers=1, sample_shard_shots=8_192)
        try:
            job = CircuitJob(
                job_id="meta",
                circuit=bernstein_vazirani("10110"),
                shots=40_000,
                noise_model=device.noise_model,
            )
            engine.run([job], seed=7)
            report = ExperimentReport(name="meta-check")
            attach_engine_meta(report, engine)
        finally:
            engine.close()
        reduction = report.meta["planner"]["reduction"]
        assert reduction["merges"] == 4
        assert reduction["tree_depth"] == 3
        assert reduction["peak_live_segments"] >= 2
        assert reduction["merge_seconds"] >= 0.0


class TestChunksizeOverheadFloor:
    def test_chunksize_unchanged_without_profile(self):
        engine = ExecutionEngine(max_workers=4)
        assert engine._pool_chunksize(64, None) == 4
        assert engine._pool_chunksize(64, 0.002) == 4  # no profile active

    def test_chunksize_grows_for_cheap_tasks_under_profile(self):
        profile = costmodel.MachineProfile(engine={"per_job_overhead": 0.01})
        engine = ExecutionEngine(max_workers=4)
        costmodel.set_active_profile(profile)
        try:
            # 1 ms tasks vs 10 ms dispatch overhead: chunks must carry ~4x
            # the overhead of work (40 tasks), capped at num_tasks/workers.
            assert engine._pool_chunksize(64, 0.001) == 16
            # Expensive tasks keep the count-based split.
            assert engine._pool_chunksize(64, 10.0) == 4
        finally:
            costmodel.reset_active_profile()
