"""Tests for the shared execution engine: caching, determinism, parallelism."""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuits.bv import bernstein_vazirani
from repro.circuits.qaoa import default_qaoa_parameters, qaoa_circuit
from repro.engine import CircuitJob, ExecutionCache, ExecutionEngine
from repro.engine.hashing import circuit_fingerprint, transpile_key
from repro.exceptions import EngineError
from repro.maxcut.graphs import regular_graph_problem
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.device import ibm_paris


def _bv_jobs(widths=(4, 5, 6), keys_per_width=2, shots=1024, transpile=True):
    device = ibm_paris()
    jobs = []
    for num_qubits in widths:
        for key_index in range(keys_per_width):
            jobs.append(
                CircuitJob(
                    job_id=f"bv-n{num_qubits}-k{key_index}",
                    circuit=bernstein_vazirani("1" * num_qubits),
                    shots=shots,
                    noise_model=device.noise_model,
                    coupling_map=device.coupling_map if transpile else None,
                    basis_gates=device.basis_gates if transpile else None,
                    metadata={"num_qubits": num_qubits},
                )
            )
    return jobs


class TestHashing:
    def test_fingerprint_ignores_name_but_not_structure(self):
        a = QuantumCircuit(2, name="left").h(0).cx(0, 1)
        b = QuantumCircuit(2, name="right").h(0).cx(0, 1)
        c = QuantumCircuit(2).h(0).cx(1, 0)
        assert circuit_fingerprint(a) == circuit_fingerprint(b)
        assert circuit_fingerprint(a) != circuit_fingerprint(c)

    def test_fingerprint_sensitive_to_params_and_width(self):
        a = QuantumCircuit(1).rz(0.5, 0)
        b = QuantumCircuit(1).rz(0.6, 0)
        assert circuit_fingerprint(a) != circuit_fingerprint(b)
        assert circuit_fingerprint(QuantumCircuit(2).h(0)) != circuit_fingerprint(
            QuantumCircuit(3).h(0)
        )

    def test_transpile_key_includes_target(self):
        device = ibm_paris()
        circuit = bernstein_vazirani("101")
        with_map = transpile_key(circuit, device.coupling_map, device.basis_gates)
        without_map = transpile_key(circuit, None, device.basis_gates)
        other_basis = transpile_key(circuit, device.coupling_map, ("rz", "sx", "x", "cz"))
        assert len({with_map, without_map, other_basis}) == 3


class TestCacheAccounting:
    def test_within_batch_dedup(self):
        engine = ExecutionEngine()
        engine.run(_bv_jobs(), seed=1)
        stats = engine.last_run_stats
        assert stats.num_jobs == 6
        # One transpile + one ideal simulation per unique width; the second
        # key of each width reuses both.
        assert stats.unique_transpiles_computed == 3
        assert stats.unique_ideals_computed == 3
        assert stats.transpile_cache_hits == 3
        assert stats.ideal_cache_hits == 3

    def test_second_run_is_fully_cached(self):
        engine = ExecutionEngine()
        first = engine.run(_bv_jobs(), seed=1)
        second = engine.run(_bv_jobs(), seed=1)
        stats = engine.last_run_stats
        assert stats.unique_transpiles_computed == 0
        assert stats.unique_ideals_computed == 0
        assert stats.transpile_cache_hits == 6
        assert stats.ideal_cache_hits == 6
        for before, after in zip(first, second):
            assert before.noisy.counts() == after.noisy.counts()
            assert after.transpile_cache_hit and after.ideal_cache_hit
            assert after.prepare_seconds == 0.0

    def test_per_job_trace_rows(self):
        engine = ExecutionEngine()
        results = engine.run(_bv_jobs(widths=(4,), keys_per_width=2), seed=1)
        owner, duplicate = results
        assert owner.transpile_cache_hit is False and owner.ideal_cache_hit is False
        assert duplicate.transpile_cache_hit is True and duplicate.ideal_cache_hit is True
        row = duplicate.as_trace_row()
        assert row["job_id"] == "bv-n4-k1"
        assert row["transpile_cache_hit"] is True
        assert row["sample_seconds"] > 0.0

    def test_disk_cache_survives_engine_restart(self, tmp_path):
        cache_dir = tmp_path / "artifacts"
        first = ExecutionEngine(cache_dir=str(cache_dir))
        first.run(_bv_jobs(), seed=1)
        assert any(cache_dir.rglob("*.pkl"))

        fresh = ExecutionEngine(cache_dir=str(cache_dir))
        fresh.run(_bv_jobs(), seed=1)
        stats = fresh.last_run_stats
        assert stats.unique_transpiles_computed == 0
        assert stats.unique_ideals_computed == 0

    def test_corrupt_disk_entry_degrades_to_miss(self, tmp_path):
        cache_dir = tmp_path / "artifacts"
        ExecutionEngine(cache_dir=str(cache_dir)).run(_bv_jobs(widths=(4,), keys_per_width=1), seed=1)
        for path in cache_dir.rglob("*.pkl"):
            path.write_bytes(b"not a pickle")
        healed = ExecutionEngine(cache_dir=str(cache_dir))
        results = healed.run(_bv_jobs(widths=(4,), keys_per_width=1), seed=1)
        assert results[0].noisy.num_bits == 4
        assert healed.last_run_stats.unique_transpiles_computed == 1  # recomputed, no crash

    def test_cache_counters(self):
        cache = ExecutionCache()
        assert cache.get("ideal", "missing") is None
        cache.put("ideal", "k", object())
        assert cache.get("ideal", "k") is not None
        stats = cache.stats()
        assert stats["ideal_hits"] == 1 and stats["ideal_misses"] == 1
        with pytest.raises(EngineError):
            cache.get("histograms", "k")

    def test_memory_tier_is_bounded_lru(self):
        cache = ExecutionCache(max_memory_entries=2)
        cache.put("ideal", "a", "A")
        cache.put("ideal", "b", "B")
        assert cache.get("ideal", "a") == "A"  # refresh a -> b is now oldest
        cache.put("ideal", "c", "C")
        assert cache.num_memory_entries == 2
        assert cache.get("ideal", "b") is None  # evicted
        assert cache.get("ideal", "a") == "A"

    def test_disk_write_failure_degrades_to_memory_only(self, tmp_path):
        cache_dir = tmp_path / "artifacts"
        cache = ExecutionCache(cache_dir=str(cache_dir))
        # Occupy the namespace directory's path with a file so the disk
        # write fails (works even when the suite runs as root, for whom
        # permission bits are advisory).
        (cache_dir / "ideal").write_bytes(b"roadblock")
        with pytest.warns(UserWarning, match="continuing memory-only"):
            cache.put("ideal", "k", "V")
        assert cache.get("ideal", "k") == "V"  # memory tier still serves it


class TestDeterministicParallelism:
    @pytest.mark.parametrize("max_workers", [2, 4])
    def test_bit_identical_across_worker_counts(self, max_workers):
        serial = ExecutionEngine(max_workers=1).run(_bv_jobs(), seed=9)
        parallel = ExecutionEngine(max_workers=max_workers).run(_bv_jobs(), seed=9)
        for a, b in zip(serial, parallel):
            assert a.job_id == b.job_id
            assert a.noisy.counts() == b.noisy.counts()
            assert a.ideal.counts() == b.ideal.counts()
            assert a.num_swaps == b.num_swaps
            assert a.two_qubit_gates == b.two_qubit_gates

    def test_qaoa_jobs_identical_without_transpile(self):
        problem = regular_graph_problem(6, degree=3, seed=4)
        device = ibm_paris()
        jobs = [
            CircuitJob(
                job_id=f"qaoa-p{p}",
                circuit=qaoa_circuit(problem, default_qaoa_parameters(p)),
                shots=2048,
                noise_model=device.noise_model,
            )
            for p in (1, 2, 3)
        ]
        serial = ExecutionEngine(max_workers=1).run(jobs, seed=5)
        parallel = ExecutionEngine(max_workers=4).run(jobs, seed=5)
        for a, b in zip(serial, parallel):
            assert a.noisy.counts() == b.noisy.counts()

    def test_seed_changes_results(self):
        jobs = _bv_jobs(widths=(5,), keys_per_width=1)
        a = ExecutionEngine().run(jobs, seed=1)[0]
        b = ExecutionEngine().run(jobs, seed=2)[0]
        assert a.noisy.counts() != b.noisy.counts()

    def test_pool_is_reused_across_runs_and_closeable(self):
        with ExecutionEngine(max_workers=2) as engine:
            engine.run(_bv_jobs(widths=(4,), keys_per_width=2), seed=1)
            pool = engine._pool
            assert pool is not None
            engine.run(_bv_jobs(widths=(5,), keys_per_width=2), seed=1)
            assert engine._pool is pool  # same pool, no respawn per batch
        assert engine._pool is None  # context exit shuts it down
        # The engine recovers after close: the next run recreates the pool.
        results = engine.run(_bv_jobs(widths=(4,), keys_per_width=2), seed=1)
        assert len(results) == 2
        engine.close()

    def test_map_timed_matches_serial(self):
        items = [1, 2, 3, 4]
        serial = ExecutionEngine(max_workers=1).map_timed(_square, items)
        parallel = ExecutionEngine(max_workers=2).map_timed(_square, items)
        assert [r for r, _ in serial] == [1, 4, 9, 16]
        assert [r for r, _ in parallel] == [1, 4, 9, 16]
        assert all(seconds >= 0.0 for _, seconds in serial + parallel)


def _square(value: int) -> int:
    return value * value


class TestValidation:
    def test_rejects_duplicate_job_ids(self):
        jobs = _bv_jobs(widths=(4,), keys_per_width=1) * 2
        with pytest.raises(EngineError):
            ExecutionEngine().run(jobs, seed=1)

    def test_rejects_bad_method(self):
        device = ibm_paris()
        with pytest.raises(EngineError):
            CircuitJob(
                job_id="bad",
                circuit=bernstein_vazirani("11"),
                shots=16,
                noise_model=device.noise_model,
                method="exact",
            )

    def test_rejects_nonpositive_shots_and_workers(self):
        device = ibm_paris()
        with pytest.raises(EngineError):
            CircuitJob(
                job_id="bad",
                circuit=bernstein_vazirani("11"),
                shots=0,
                noise_model=device.noise_model,
            )
        with pytest.raises(EngineError):
            ExecutionEngine(max_workers=0)

    def test_rejects_negative_seed(self):
        with pytest.raises(EngineError):
            ExecutionEngine().run(_bv_jobs(widths=(4,), keys_per_width=1), seed=-3)

    def test_empty_batch_is_fine(self):
        engine = ExecutionEngine()
        assert engine.run([], seed=0) == []
        assert engine.last_run_stats.num_jobs == 0


class TestTrajectoryMethod:
    def test_trajectory_jobs_are_deterministic(self):
        device = ibm_paris()
        jobs = [
            CircuitJob(
                job_id="traj",
                circuit=bernstein_vazirani("1011"),
                shots=256,
                noise_model=device.noise_model,
                method="trajectory",
            )
        ]
        a = ExecutionEngine().run(jobs, seed=3)[0]
        b = ExecutionEngine(max_workers=1).run(jobs, seed=3)[0]
        assert a.noisy.counts() == b.noisy.counts()
        assert a.noisy.num_bits == 4


class TestWidthValidation:
    def test_circuit_wider_than_device_fails_at_submission(self):
        device = ibm_paris()
        job = CircuitJob(
            job_id="too-wide",
            circuit=bernstein_vazirani("1" * (device.num_qubits + 1)),
            shots=128,
            noise_model=device.noise_model,
            device=device,
        )
        from repro.exceptions import DeviceError

        with pytest.raises(DeviceError, match=r"ibm-paris.*has 27|27"):
            ExecutionEngine().run([job], seed=0)

    def test_error_names_device_and_both_widths(self):
        device = ibm_paris()
        job = CircuitJob(
            job_id="too-wide",
            circuit=bernstein_vazirani("1" * 30),
            shots=128,
            noise_model=device.noise_model,
            device=device,
        )
        from repro.exceptions import DeviceError

        with pytest.raises(DeviceError) as excinfo:
            ExecutionEngine().run([job], seed=0)
        message = str(excinfo.value)
        assert "ibm-paris" in message and "30" in message and "27" in message

    def test_circuit_wider_than_coupling_map_fails_at_submission(self):
        device = ibm_paris()
        job = CircuitJob(
            job_id="too-wide-map",
            circuit=bernstein_vazirani("1" * 30),
            shots=128,
            noise_model=device.noise_model,
            coupling_map=device.coupling_map,
        )
        from repro.exceptions import DeviceError

        with pytest.raises(DeviceError, match="coupling map"):
            ExecutionEngine().run([job], seed=0)

    def test_circuit_wider_than_calibration_fails_at_submission(self):
        from repro.calibration import synthetic_snapshot
        from repro.exceptions import DeviceError
        from repro.quantum.coupling import linear_coupling
        from repro.quantum.device import DeviceProfile
        from repro.quantum.noise import NoiseModel

        small = DeviceProfile(
            name="tiny", num_qubits=4, coupling_map=linear_coupling(4), noise_model=NoiseModel()
        )
        calibrated = NoiseModel().with_calibration(synthetic_snapshot(small, seed=0, spread=0.2))
        job = CircuitJob(
            job_id="too-wide-cal",
            circuit=bernstein_vazirani("10101"),
            shots=128,
            noise_model=calibrated,
        )
        with pytest.raises(DeviceError, match="tiny"):
            ExecutionEngine().run([job], seed=0)

    def test_fitting_job_passes(self):
        device = ibm_paris()
        job = CircuitJob(
            job_id="fits",
            circuit=bernstein_vazirani("101"),
            shots=128,
            noise_model=device.noise_model,
            device=device,
            coupling_map=device.coupling_map,
            basis_gates=device.basis_gates,
        )
        result = ExecutionEngine().run_single(job, seed=0)
        assert result.noisy.num_bits == 3


class TestCalibrationCacheKeys:
    def test_uniform_and_calibrated_runs_never_collide(self):
        from repro.calibration import synthetic_snapshot
        from repro.engine.hashing import noise_fingerprint, sample_key

        device = ibm_paris()
        circuit = bernstein_vazirani("1011")
        uniform = device.noise_model
        calibrated = uniform.with_calibration(synthetic_snapshot(device, seed=1, spread=0.3))
        assert noise_fingerprint(uniform) != noise_fingerprint(calibrated)
        uniform_key = sample_key(circuit, uniform, 1024, "bitflip", (0, 0))
        calibrated_key = sample_key(circuit, calibrated, 1024, "bitflip", (0, 0))
        assert uniform_key != calibrated_key

    def test_different_snapshots_get_different_keys(self):
        from repro.calibration import synthetic_snapshot
        from repro.engine.hashing import noise_fingerprint

        device = ibm_paris()
        a = device.noise_model.with_calibration(synthetic_snapshot(device, seed=1, spread=0.3))
        b = device.noise_model.with_calibration(synthetic_snapshot(device, seed=2, spread=0.3))
        drifted = device.noise_model.with_calibration(
            synthetic_snapshot(device, seed=1, spread=0.3).drifted(2.0)
        )
        assert len({noise_fingerprint(a), noise_fingerprint(b), noise_fingerprint(drifted)}) == 3

    def test_sample_key_pins_seed_entropy(self):
        from repro.engine.hashing import sample_key

        device = ibm_paris()
        circuit = bernstein_vazirani("1011")
        base = sample_key(circuit, device.noise_model, 1024, "bitflip", (0, 0))
        assert base == sample_key(circuit, device.noise_model, 1024, "bitflip", (0, 0))
        assert base != sample_key(circuit, device.noise_model, 1024, "bitflip", (0, 1))
        assert base != sample_key(circuit, device.noise_model, 2048, "bitflip", (0, 0))
        assert base != sample_key(circuit, device.noise_model, 1024, "trajectory", (0, 0))


class TestSampleCache:
    def test_second_run_hits_the_sample_tier(self):
        engine = ExecutionEngine()
        first = engine.run(_bv_jobs(), seed=1)
        assert engine.last_run_stats.sample_cache_hits == 0
        second = engine.run(_bv_jobs(), seed=1)
        assert engine.last_run_stats.sample_cache_hits == len(second)
        for before, after in zip(first, second):
            assert before.noisy.counts() == after.noisy.counts()
            assert after.sample_cache_hit and after.sample_seconds == 0.0

    def test_different_seed_misses_the_sample_tier(self):
        engine = ExecutionEngine()
        engine.run(_bv_jobs(), seed=1)
        results = engine.run(_bv_jobs(), seed=2)
        assert engine.last_run_stats.sample_cache_hits == 0
        assert all(not result.sample_cache_hit for result in results)

    def test_cached_samples_match_an_uncached_engine(self):
        shared = ExecutionEngine()
        shared.run(_bv_jobs(), seed=1)
        warm = shared.run(_bv_jobs(), seed=1)
        cold = ExecutionEngine().run(_bv_jobs(), seed=1)
        for cached, fresh in zip(warm, cold):
            assert cached.noisy.counts() == fresh.noisy.counts()


class TestResultPermutationAndExecutedCircuit:
    def test_transpiled_result_exposes_permutation_and_executed_circuit(self):
        device = ibm_paris()
        job = CircuitJob(
            job_id="routed",
            circuit=bernstein_vazirani("1" * 8),
            shots=256,
            noise_model=device.noise_model,
            coupling_map=device.coupling_map,
            basis_gates=device.basis_gates,
        )
        result = ExecutionEngine().run_single(job, seed=0)
        assert result.measurement_permutation is not None
        assert sorted(result.measurement_permutation) == list(range(8))
        # Routing SWAPs make the executed circuit strictly heavier than the
        # logical one — this is what calibration-aware consumers must see.
        assert result.executed_circuit is not None
        assert result.executed_circuit.num_two_qubit_gates() > job.circuit.num_two_qubit_gates()

    def test_untranspiled_result_has_no_permutation(self):
        device = ibm_paris()
        job = CircuitJob(
            job_id="logical",
            circuit=bernstein_vazirani("101"),
            shots=256,
            noise_model=device.noise_model,
        )
        result = ExecutionEngine().run_single(job, seed=0)
        assert result.measurement_permutation is None
        assert result.executed_circuit is job.circuit
