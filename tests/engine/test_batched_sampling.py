"""Engine phase-3 batching: grouped multi-seed sampling + shot sharding.

The grouping and sharding rewrites must be invisible in the results: grouped
jobs draw exactly the histograms their lone per-job RNG streams would, and
sharded million-shot jobs produce bit-identical rows for any worker count,
with the shard layout folded into the sample cache key so the two stream
layouts can never alias.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backends import get_backend
from repro.circuits.bv import bernstein_vazirani
from repro.engine import CircuitJob, ExecutionEngine
from repro.engine.hashing import sample_key
from repro.exceptions import EngineError, MergeError
from repro.quantum.device import get_device
from repro.quantum.sampler import (
    merge_counted_chunks,
    sample_bitflip_batch,
    sample_bitflip_chunk,
    sample_bitflip_distribution,
)


@pytest.fixture(scope="module")
def device():
    return get_device("ibm-paris")


def _jobs(device, count=4, shots=2048, key="10110"):
    circuit = bernstein_vazirani(key)
    return [
        CircuitJob(
            job_id=f"job-{index}",
            circuit=circuit,
            shots=shots,
            noise_model=device.noise_model,
        )
        for index in range(count)
    ]


class TestGroupedSampling:
    def test_grouped_results_match_lone_draws_exactly(self, device):
        jobs = _jobs(device, count=5)
        engine = ExecutionEngine()
        results = engine.run(jobs, seed=7)
        assert engine.last_run_stats.sample_groups == 1
        assert engine.last_run_stats.grouped_sample_jobs == 5
        ideal = get_backend("statevector").ideal_distribution(jobs[0].circuit)
        for index, result in enumerate(results):
            rng = np.random.default_rng(np.random.SeedSequence((7, index)))
            lone = sample_bitflip_distribution(
                jobs[0].circuit, device.noise_model, jobs[0].shots, rng=rng, ideal=ideal
            )
            assert result.noisy.counts() == lone.counts()

    def test_batch_function_matches_lone_draws(self, device):
        circuit = bernstein_vazirani("110")
        ideal = get_backend("statevector").ideal_distribution(circuit)
        requests = [
            (500 + 100 * index, np.random.default_rng(np.random.SeedSequence((3, index))))
            for index in range(3)
        ]
        batched = sample_bitflip_batch(circuit, device.noise_model, requests, ideal=ideal)
        for index, noisy in enumerate(batched):
            rng = np.random.default_rng(np.random.SeedSequence((3, index)))
            lone = sample_bitflip_distribution(
                circuit, device.noise_model, 500 + 100 * index, rng=rng, ideal=ideal
            )
            assert noisy.counts() == lone.counts()

    def test_distinct_noise_models_never_share_a_group(self, device):
        circuit = bernstein_vazirani("1011")
        scaled = device.noise_model.scaled(2.0)
        jobs = [
            CircuitJob(job_id="a", circuit=circuit, shots=512, noise_model=device.noise_model),
            CircuitJob(job_id="b", circuit=circuit, shots=512, noise_model=scaled),
        ]
        engine = ExecutionEngine()
        engine.run(jobs, seed=1)
        assert engine.last_run_stats.sample_groups == 2
        assert engine.last_run_stats.grouped_sample_jobs == 0

    def test_grouping_is_invisible_to_worker_count(self, device):
        jobs = _jobs(device, count=6, shots=1024)
        serial = ExecutionEngine(max_workers=1).run(jobs, seed=5)
        with ExecutionEngine(max_workers=2) as engine:
            parallel = engine.run(jobs, seed=5)
        for lhs, rhs in zip(serial, parallel):
            assert lhs.noisy.counts() == rhs.noisy.counts()

    def test_empty_batch_request_list(self, device):
        assert sample_bitflip_batch(bernstein_vazirani("11"), device.noise_model, []) == []


class TestShardedSampling:
    def test_sharded_rows_bit_identical_across_worker_counts(self, device):
        job = _jobs(device, count=1, shots=40_000)[0]
        tables = []
        for workers in (1, 2, 4):
            with ExecutionEngine(max_workers=workers, sample_shard_shots=8_192) as engine:
                result = engine.run([job], seed=3)[0]
                assert engine.last_run_stats.sharded_jobs == 1
                assert engine.last_run_stats.sample_shards == 5
            tables.append(result.noisy.counts())
        assert tables[0] == tables[1] == tables[2]
        assert sum(tables[0].values()) == 40_000

    def test_shard_layout_splits_cache_keys(self, device):
        circuit = bernstein_vazirani("101")
        base = dict(
            noise_model=device.noise_model, shots=10_000, method="bitflip", entropy=(0, 0)
        )
        unsharded = sample_key(circuit, **base)
        sharded = sample_key(circuit, **base, shard_shots=4_096)
        other_layout = sample_key(circuit, **base, shard_shots=2_048)
        assert len({unsharded, sharded, other_layout}) == 3

    def test_sharded_job_hits_cache_on_rerun(self, device):
        job = _jobs(device, count=1, shots=20_000)[0]
        engine = ExecutionEngine(sample_shard_shots=4_096)
        first = engine.run([job], seed=2)[0]
        assert engine.last_run_stats.sample_cache_hits == 0
        second = engine.run([job], seed=2)[0]
        assert engine.last_run_stats.sample_cache_hits == 1
        # Sampling counters track computed work only: nothing sharded on a hit.
        assert engine.last_run_stats.sharded_jobs == 0
        assert engine.last_run_stats.sample_shards == 0
        assert first.noisy.counts() == second.noisy.counts()

    def test_shard_threshold_env_and_validation(self, device, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLE_SHARD_SHOTS", "5000")
        assert ExecutionEngine().sample_shard_shots == 5000
        monkeypatch.setenv("REPRO_SAMPLE_SHARD_SHOTS", "soon")
        with pytest.raises(EngineError):
            ExecutionEngine()
        monkeypatch.delenv("REPRO_SAMPLE_SHARD_SHOTS")
        with pytest.raises(EngineError):
            ExecutionEngine(sample_shard_shots=0)

    def test_chunk_merge_is_exact_and_order_stable(self, device):
        circuit = bernstein_vazirani("1101")
        ideal = get_backend("statevector").ideal_distribution(circuit)
        chunks = []
        for chunk_index in range(3):
            rng = np.random.default_rng(np.random.SeedSequence((9, 0, chunk_index)))
            chunks.append(
                sample_bitflip_chunk(circuit, device.noise_model, 700, rng, ideal=ideal)
            )
        merged = merge_counted_chunks(chunks, circuit.num_qubits)
        assert sum(merged.counts().values()) == 3 * 700
        # counts are integer-valued floats: any merge order is exactly equal
        reversed_merge = merge_counted_chunks(list(reversed(chunks)), circuit.num_qubits)
        assert merged.counts() == reversed_merge.counts()

    def test_merge_rejects_empty(self):
        with pytest.raises(MergeError):
            merge_counted_chunks([], 4)

    def test_trajectory_jobs_are_never_sharded(self, device):
        job = CircuitJob(
            job_id="traj",
            circuit=bernstein_vazirani("101"),
            shots=30_000,
            noise_model=device.noise_model,
            method="trajectory",
        )
        engine = ExecutionEngine(sample_shard_shots=1_000)
        result = engine.run([job], seed=0)[0]
        assert engine.last_run_stats.sharded_jobs == 0
        assert engine.last_run_stats.sample_shards == 0
        assert sum(result.noisy.counts().values()) == 30_000
