"""Broker transport tests: pull workers, leases, heartbeats, degradation.

The acceptance property is the transport suite's, one level up: chunks now
reach workers by *pull* through a lease broker, workers die holding leases
and join mid-run, and none of it may be visible in the rows — only in
provenance (``leases_reissued``, ``workers_joined/left``) and
``report.meta["planner"]["transport"]``.
"""

from __future__ import annotations

import socket
import threading
import time

import pytest

from repro.circuits.bv import bernstein_vazirani
from repro.engine import CircuitJob, ExecutionEngine
from repro.engine.broker import (
    ENV_SHARD_BROKER,
    ENV_SHARD_BROKER_LISTEN,
    ENV_SHARD_JOIN_DEADLINE,
    BrokerExecutor,
    BrokerWorker,
    ShardBroker,
    broker_executor_from_env,
)
from repro.engine.executors import SHARD_EXECUTOR_NAMES
from repro.engine.transport import recv_message, send_message
from repro.exceptions import EngineError, TransportError
from repro.quantum.device import get_device


# Module-level so tasks ship to workers by reference.
def _double(task):
    return task * 2


def _fail_on_negative(task):
    if task < 0:
        raise ValueError(f"negative task {task}")
    return task


@pytest.fixture
def broker():
    broker = ShardBroker(heartbeat=0.1).start()
    yield broker
    broker.stop()


def _start_worker(broker, **kwargs) -> BrokerWorker:
    worker = BrokerWorker(broker.address, **kwargs)
    thread = threading.Thread(target=worker.run_forever, daemon=True)
    thread.start()
    return worker


# ---------------------------------------------------------------------------
# Broker service + pull worker
# ---------------------------------------------------------------------------
class TestShardBroker:
    def test_pull_worker_executes_batch(self, broker):
        _start_worker(broker)
        executor = BrokerExecutor(broker=broker.address, join_deadline=5.0, timeout=10.0)
        try:
            assert sorted(executor.run(_double, [1, 2, 3])) == [2, 4, 6]
            provenance = executor.provenance()
            assert provenance["executor"] == "broker"
            assert provenance["workers_joined"] == 1
            assert provenance["leases_issued"] == 3
            assert provenance["chunks_completed"] == 3
            assert provenance["leases_reissued"] == 0
        finally:
            executor.close()

    def test_status_op(self, broker):
        _start_worker(broker)
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            if broker.stats()["workers"] == 1:
                break
            time.sleep(0.01)
        status = broker.stats()
        assert status["workers"] == 1
        assert status["queued_chunks"] == 0

    def test_empty_task_list(self, broker):
        _start_worker(broker)
        executor = BrokerExecutor(broker=broker.address, join_deadline=5.0, timeout=10.0)
        try:
            assert list(executor.run(_double, [])) == []
        finally:
            executor.close()

    def test_task_exception_is_terminal(self, broker):
        _start_worker(broker)
        executor = BrokerExecutor(broker=broker.address, join_deadline=5.0, timeout=10.0)
        try:
            with pytest.raises(TransportError, match="negative task"):
                list(executor.run(_fail_on_negative, [1, -2, 3]))
        finally:
            executor.close()

    def test_worker_dying_with_lease_reissues_chunk(self, broker):
        # The dying worker computes one chunk, then dies abruptly *holding*
        # its second lease; the survivor must receive the re-issued chunk.
        _start_worker(broker, max_chunks=1)
        executor = BrokerExecutor(broker=broker.address, join_deadline=5.0, timeout=15.0)
        try:
            survivor_started = False
            results = []
            for value in executor.run(_double, [1, 2, 3, 4]):
                results.append(value)
                if not survivor_started:
                    _start_worker(broker)
                    survivor_started = True
            assert sorted(results) == [2, 4, 6, 8]
            provenance = executor.provenance()
            assert provenance["leases_reissued"] >= 1
            assert provenance["workers_joined"] >= 2
            assert provenance["workers_left"] >= 1
        finally:
            executor.close()

    def test_expired_lease_of_wedged_worker_reissues(self, broker):
        # A wedged-but-connected worker: takes a lease, never heartbeats,
        # never disconnects.  Only TTL expiry can recover its chunk.
        wedge = socket.create_connection((broker.host, broker.port), timeout=5.0)
        try:
            send_message(wedge, ("register", "wedge"))
            assert recv_message(wedge)[0] == "registered"

            executor = BrokerExecutor(
                broker=broker.address, join_deadline=5.0, timeout=15.0
            )
            collected: list = []

            def drain():
                collected.extend(executor.run(_double, [1, 2, 3]))

            run_thread = threading.Thread(target=drain, daemon=True)
            run_thread.start()
            # Wedge grabs the first chunk... and then does nothing at all.
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                send_message(wedge, ("next",))
                reply = recv_message(wedge)
                if reply[0] == "chunk":
                    break
                time.sleep(0.01)
            else:
                pytest.fail("wedged worker never received a chunk")
            _start_worker(broker)  # the healthy worker that inherits it
            run_thread.join(timeout=15.0)
            assert not run_thread.is_alive()
            assert sorted(collected) == [2, 4, 6]
            stats = broker.stats()
            assert stats["leases_reissued"] >= 1
            assert executor.provenance()["duplicate_results"] == 0
            executor.close()
        finally:
            wedge.close()

    def test_heartbeats_keep_slow_worker_leased(self, broker):
        # One slow worker, compute time ~6x the lease TTL: heartbeats must
        # keep renewing the lease, so the chunk is never re-issued.
        _start_worker(broker, delay=2.0)  # ttl = 0.3s at heartbeat 0.1
        executor = BrokerExecutor(broker=broker.address, join_deadline=5.0, timeout=30.0)
        try:
            assert sorted(executor.run(_double, [7])) == [14]
            provenance = executor.provenance()
            assert provenance["leases_reissued"] == 0
            assert provenance["heartbeats"] >= 1
        finally:
            executor.close()


# ---------------------------------------------------------------------------
# Executor construction, fallback, env wiring
# ---------------------------------------------------------------------------
class TestBrokerExecutor:
    def test_requires_exactly_one_mode(self):
        with pytest.raises(EngineError, match="exactly one"):
            BrokerExecutor()
        with pytest.raises(EngineError, match="exactly one"):
            BrokerExecutor(broker="127.0.0.1:1", listen="127.0.0.1:0")
        with pytest.raises(EngineError, match="timeout"):
            BrokerExecutor(broker="127.0.0.1:1", timeout=0)

    def test_embed_mode_starts_own_broker(self):
        executor = BrokerExecutor(listen="127.0.0.1:0", join_deadline=5.0, timeout=10.0)
        try:
            assert executor.embedded_broker is not None
            _start_worker(executor.embedded_broker)
            assert sorted(executor.run(_double, [5, 6])) == [10, 12]
        finally:
            executor.close()

    def test_no_worker_falls_back_instead_of_hanging(self):
        from repro.obs.logs import log_records, reset_logs

        reset_logs()
        broker = ShardBroker(heartbeat=0.1).start()
        executor = BrokerExecutor(broker=broker.address, join_deadline=0.2, timeout=5.0)
        try:
            assert sorted(executor.run(_double, [1, 2])) == [2, 4]
            provenance = executor.provenance()
            assert provenance["fallbacks"] == 1
            assert provenance["fallback"]["executor"] == "serial"
            events = [record["event"] for record in log_records()]
            assert "broker-no-workers" in events
        finally:
            executor.close()
            broker.stop()

    def test_broker_name_registered(self):
        assert "broker" in SHARD_EXECUTOR_NAMES

    def test_env_requires_exactly_one_address(self, monkeypatch):
        monkeypatch.delenv(ENV_SHARD_BROKER, raising=False)
        monkeypatch.delenv(ENV_SHARD_BROKER_LISTEN, raising=False)
        with pytest.raises(EngineError, match="exactly one of"):
            broker_executor_from_env()
        monkeypatch.setenv(ENV_SHARD_BROKER, "127.0.0.1:1")
        monkeypatch.setenv(ENV_SHARD_BROKER_LISTEN, "127.0.0.1:0")
        with pytest.raises(EngineError, match="exactly one of"):
            broker_executor_from_env()

    def test_env_validates_addresses_eagerly_naming_entry(self, monkeypatch):
        monkeypatch.delenv(ENV_SHARD_BROKER_LISTEN, raising=False)
        monkeypatch.setenv(ENV_SHARD_BROKER, "bogus")
        with pytest.raises(EngineError, match="REPRO_SHARD_BROKER entry 'bogus'"):
            broker_executor_from_env()


# ---------------------------------------------------------------------------
# Engine acceptance: mid-run death + late joiner + faults, bit-identical
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def device():
    return get_device("ibm-paris")


def _sharded_run(device, **engine_kwargs):
    """One 40k-shot job sharded into 8k chunks; returns (distribution, stats)."""
    engine = ExecutionEngine(sample_shard_shots=8_192, **engine_kwargs)
    try:
        job = CircuitJob(
            job_id="shard-broker",
            circuit=bernstein_vazirani("10110"),
            shots=40_000,
            noise_model=device.noise_model,
        )
        result = engine.run([job], seed=7)[0]
        return result.noisy, engine.last_run_stats
    finally:
        engine.close()


class TestEngineBrokerBitIdentity:
    def test_broker_run_bit_identical_to_serial(self, device):
        reference, _ = _sharded_run(device, max_workers=1, shard_executor="serial")
        broker = ShardBroker(heartbeat=0.1).start()
        try:
            _start_worker(broker)
            executor = BrokerExecutor(
                broker=broker.address, join_deadline=10.0, timeout=30.0
            )
            noisy, stats = _sharded_run(device, max_workers=1, shard_executor=executor)
            assert noisy.probabilities() == reference.probabilities()
            assert stats.transport["executor"] == "broker"
            assert stats.transport["chunks_completed"] == 5
        finally:
            broker.stop()

    def test_acceptance_death_late_join_faults(self, device):
        """The ISSUE acceptance scenario: a worker dies mid-run holding a
        lease, a replacement joins late, drop/duplicate faults are injected
        — rows bit-identical to serial, lease re-issues and worker
        join/leave counts visible in ``report.meta["planner"]["transport"]``.
        """
        from repro.engine.transport import FaultInjectingExecutor
        from repro.experiments.runner import ExperimentReport, attach_engine_meta

        reference, _ = _sharded_run(device, max_workers=1, shard_executor="serial")
        broker = ShardBroker(heartbeat=0.1).start()
        try:
            # Only the doomed worker exists at submit time: it computes one
            # chunk, takes the next lease, and dies holding it.  The late
            # joiner (0.3s in) is the only path to completion.
            _start_worker(broker, max_chunks=1)
            joiner = threading.Timer(0.3, _start_worker, args=(broker,))
            joiner.daemon = True
            joiner.start()
            executor = FaultInjectingExecutor(
                BrokerExecutor(broker=broker.address, join_deadline=10.0, timeout=30.0),
                seed=5,
                drop=0.2,
                duplicate=0.2,
            )
            engine = ExecutionEngine(
                max_workers=1, sample_shard_shots=8_192, shard_executor=executor
            )
            try:
                job = CircuitJob(
                    job_id="shard-broker",
                    circuit=bernstein_vazirani("10110"),
                    shots=40_000,
                    noise_model=device.noise_model,
                )
                result = engine.run([job], seed=7)[0]
                report = ExperimentReport(name="broker-acceptance")
                attach_engine_meta(report, engine)
            finally:
                engine.close()
            assert result.noisy.probabilities() == reference.probabilities()
            transport = report.meta["planner"]["transport"]
            assert transport["inner"]["executor"] == "broker"
            assert transport["inner"]["leases_reissued"] >= 1, transport
            assert transport["inner"]["workers_joined"] >= 2, transport
            assert transport["inner"]["workers_left"] >= 1, transport
            assert sum(transport["faults"].values()) >= 1, transport
        finally:
            joiner.cancel()
            broker.stop()

    def test_env_resolved_broker_run(self, device, monkeypatch):
        reference, _ = _sharded_run(device, max_workers=1, shard_executor="serial")
        broker = ShardBroker(heartbeat=0.1).start()
        try:
            _start_worker(broker)
            monkeypatch.setenv("REPRO_SHARD_EXECUTOR", "broker")
            monkeypatch.setenv(ENV_SHARD_BROKER, broker.address)
            monkeypatch.setenv(ENV_SHARD_JOIN_DEADLINE, "10")
            noisy, stats = _sharded_run(device, max_workers=1)
            assert noisy.probabilities() == reference.probabilities()
            assert stats.planner_decisions["shard-executor"] == {"broker/override": 1}
            assert stats.transport["executor"] == "broker"
        finally:
            broker.stop()

    def test_env_resolved_fallback_when_no_worker(self, device, monkeypatch):
        # Embedded broker, nobody joins: the run must degrade to the local
        # fallback executor inside the join deadline, not hang.
        reference, _ = _sharded_run(device, max_workers=1, shard_executor="serial")
        monkeypatch.setenv("REPRO_SHARD_EXECUTOR", "broker")
        monkeypatch.setenv(ENV_SHARD_BROKER_LISTEN, "127.0.0.1:0")
        monkeypatch.setenv(ENV_SHARD_JOIN_DEADLINE, "0.2")
        noisy, stats = _sharded_run(device, max_workers=1)
        assert noisy.probabilities() == reference.probabilities()
        assert stats.transport["fallbacks"] == 1
        assert stats.transport["fallback"]["executor"] == "serial"
