"""Engine-backed studies: worker-count invariance and report JSON artifacts."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets.ibm_suite import IbmSuiteConfig
from repro.engine import ExecutionEngine
from repro.exceptions import ExperimentError
from repro.experiments import BvStudyConfig, run_bv_study, run_ibm_qaoa_study
from repro.experiments.runner import ExperimentReport
from repro.quantum import ibm_paris


class TestStudiesAreWorkerCountInvariant:
    """Acceptance criterion: bit-identical row tables for 1 vs 4 workers."""

    def test_bv_study_rows_identical(self):
        config = BvStudyConfig(qubit_range=(5, 7), keys_per_size=1, shots=1024)
        devices = [ibm_paris()]
        serial = run_bv_study(config, devices=devices, engine=ExecutionEngine(max_workers=1))
        parallel = run_bv_study(config, devices=devices, engine=ExecutionEngine(max_workers=4))
        assert serial.rows == parallel.rows
        assert serial.summary == parallel.summary

    def test_ibm_qaoa_study_rows_identical(self):
        config = IbmSuiteConfig(
            bv_qubit_range=(4, 5),
            qaoa_qubit_range=(5, 6),
            qaoa_layer_values=(2,),
            qaoa_instances_per_size=1,
            shots=1024,
            seed=3,
        )
        serial = run_ibm_qaoa_study(config=config, engine=ExecutionEngine(max_workers=1))
        parallel = run_ibm_qaoa_study(config=config, engine=ExecutionEngine(max_workers=4))
        assert serial.rows == parallel.rows
        assert serial.summary == parallel.summary

    def test_engine_meta_is_attached(self):
        config = BvStudyConfig(qubit_range=(5, 6), keys_per_size=1, shots=512)
        report = run_bv_study(config, devices=[ibm_paris()], engine=ExecutionEngine())
        engine_meta = report.meta["engine"]
        assert engine_meta["num_jobs"] == 2
        assert engine_meta["max_workers"] == 1
        assert engine_meta["wall_seconds"] > 0.0
        assert "ideal_hits" in engine_meta  # cache counters ride along

    def test_shared_cache_speeds_up_second_study_run(self):
        config = BvStudyConfig(qubit_range=(5, 7), keys_per_size=1, shots=512)
        engine = ExecutionEngine()
        first = run_bv_study(config, devices=[ibm_paris()], engine=engine)
        second = run_bv_study(config, devices=[ibm_paris()], engine=engine)
        assert first.rows == second.rows  # same config seed -> same keys + streams
        # Meta holds engine-lifetime totals: the second study run added jobs
        # but not a single new transpile or ideal simulation.
        assert second.meta["engine"]["num_jobs"] == 2 * len(first.rows)
        assert (
            second.meta["engine"]["unique_transpiles_computed"]
            == first.meta["engine"]["unique_transpiles_computed"]
        )
        assert (
            second.meta["engine"]["unique_ideals_computed"]
            == first.meta["engine"]["unique_ideals_computed"]
        )


class TestReportJson:
    def _report(self) -> ExperimentReport:
        report = ExperimentReport(
            name="unit_report",
            rows=[
                {"device": "paris", "num_qubits": np.int64(5), "pst": np.float64(0.75), "ok": np.True_},
                {"device": "paris", "num_qubits": 6, "pst": 0.5, "ok": False},
            ],
            summary={"gmean": 1.25, "count": 2.0},
        )
        report.meta["engine"] = {"num_jobs": 2, "wall_seconds": 0.01}
        return report

    def test_round_trip_preserves_everything(self):
        original = self._report()
        restored = ExperimentReport.from_json(original.to_json())
        assert restored.name == original.name
        assert restored.rows == original.rows
        assert restored.summary == original.summary
        assert restored.meta == original.meta
        # A second trip is a fixed point.
        assert ExperimentReport.from_json(restored.to_json()).to_json() == restored.to_json()

    def test_study_report_round_trips(self):
        config = BvStudyConfig(qubit_range=(5, 5), keys_per_size=1, shots=512)
        report = run_bv_study(config, devices=[ibm_paris()], engine=ExecutionEngine())
        restored = ExperimentReport.from_json(report.to_json())
        assert restored.rows == report.rows
        assert restored.summary == pytest.approx(report.summary)
        assert restored.meta["engine"]["num_jobs"] == 1

    def test_non_finite_values_serialise_as_null(self):
        report = ExperimentReport(
            name="inf_report",
            rows=[{"ist_improvement": float("inf"), "pst": 0.5}],
            summary={"worst": float("nan")},
        )
        text = report.to_json()
        assert "Infinity" not in text and "NaN" not in text
        restored = ExperimentReport.from_json(text)
        assert restored.rows[0]["ist_improvement"] is None
        assert restored.rows[0]["pst"] == 0.5
        assert restored.summary["worst"] is None

    def test_non_finite_array_values_serialise_as_null(self):
        report = ExperimentReport(
            name="inf_array_report",
            rows=[{"curve": np.array([np.inf, 1.0, np.nan])}],
        )
        restored = ExperimentReport.from_json(report.to_json())
        assert restored.rows[0]["curve"] == [None, 1.0, None]

    def test_from_json_rejects_garbage(self):
        with pytest.raises(ExperimentError):
            ExperimentReport.from_json("not json at all {")
        with pytest.raises(ExperimentError):
            ExperimentReport.from_json("[1, 2, 3]")

    def test_to_text_omits_meta(self):
        report = self._report()
        assert "wall_seconds" not in report.to_text()
        assert "unit_report" in report.to_text()
