"""End-to-end observability: the engine under an active Observation.

The PR-8 contracts checked here:

* **Determinism of counters.**  Counters count *work units* (jobs, shots,
  chunks, merges), so the merged worker metrics of a 2- or 4-worker sharded
  run equal a serial run's exactly — any discrepancy means a counter was
  placed on a dispatch path instead of a work path.
* **Results are untouched.**  Observation changes what is recorded, never
  what is computed: rows/counts are bit-identical with tracing on or off.
* **All four layers produce spans.**  engine phase -> executor shard ->
  reduction merge -> kernel call, exported as schema-valid Chrome trace
  JSON.
"""

from __future__ import annotations

import json

import pytest

from repro.circuits.bv import bernstein_vazirani
from repro.core.hammer import hammer
from repro.engine import CircuitJob, ExecutionEngine
from repro.experiments import BvStudyConfig, run_bv_study
from repro.obs import Observation
from repro.quantum.device import get_device


@pytest.fixture(scope="module")
def device():
    return get_device("ibm-paris")


def _sharded_jobs(device, count=2, shots=20_000):
    circuit = bernstein_vazirani("10110")
    return [
        CircuitJob(
            job_id=f"job-{index}",
            circuit=circuit,
            shots=shots,
            noise_model=device.noise_model,
        )
        for index in range(count)
    ]


def _observed_run(device, workers):
    """One sharded engine run + a HAMMER pass under a fresh Observation."""
    jobs = _sharded_jobs(device)
    with Observation() as observation:
        with ExecutionEngine(max_workers=workers, sample_shard_shots=4_096) as engine:
            results = engine.run(jobs, seed=11)
        reconstructed = hammer(results[0].noisy)
    counts = [result.noisy.counts() for result in results]
    return observation, counts, dict(reconstructed.items())


class TestCounterDeterminism:
    def test_merged_counters_identical_across_worker_counts(self, device):
        """1-, 2- and 4-worker sharded runs report exactly equal counters."""
        snapshots = []
        tables = None
        for workers in (1, 2, 4):
            observation, counts, _ = _observed_run(device, workers)
            snapshots.append(observation.registry.snapshot()["counters"])
            if tables is None:
                tables = counts
            else:
                assert counts == tables  # results stay bit-identical too
        assert snapshots[0] == snapshots[1] == snapshots[2]
        counters = snapshots[0]
        # Work-unit sanity: 2 jobs x 20_000 shots in 4_096-shot chunks = 5 each.
        assert counters["engine.jobs"] == 2
        assert counters["sampler.chunks"] == 10
        assert counters["sampler.chunk_shots"] == 40_000
        assert counters["reduction.merges"] == 8  # 5-leaf tree merges 4x, per job
        assert counters["kernel.plan.dense"] >= 1  # the hammer pass dispatched


class TestRowsBitIdentical:
    def test_observation_never_changes_results(self, device):
        jobs = _sharded_jobs(device)
        with ExecutionEngine(max_workers=2, sample_shard_shots=4_096) as engine:
            plain = [r.noisy.counts() for r in engine.run(jobs, seed=11)]
        _, observed, _ = _observed_run(device, 2)
        assert plain == observed

    def test_hammer_output_identical_under_observation(self, device):
        _, _, first = _observed_run(device, 1)
        jobs = _sharded_jobs(device)
        with ExecutionEngine(max_workers=1, sample_shard_shots=4_096) as engine:
            results = engine.run(jobs, seed=11)
        assert dict(hammer(results[0].noisy).items()) == first


class TestFourLayerTrace:
    @staticmethod
    def _assert_valid_chrome_trace(trace):
        assert isinstance(trace["traceEvents"], list)
        assert trace["otherData"]["dropped_events"] >= 0
        for event in trace["traceEvents"]:
            assert event["ph"] in ("X", "M")
            assert isinstance(event["name"], str) and event["name"]
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["ts"] >= 0.0 and event["dur"] >= 0.0
                assert isinstance(event["args"], dict)

    def test_spans_from_every_layer_and_valid_chrome_json(self, device):
        observation, _, _ = _observed_run(device, 4)
        names = observation.recorder.span_names()
        # engine phase layer (post-hoc spans from the phase timers + run span)
        assert "engine.run" in names
        assert "phase.sample" in names
        assert "phase.hammer" in names
        # executor shard layer
        assert "executor.shard" in names
        # reduction merge layer
        assert "reduction.merge" in names
        # kernel layer
        assert "kernel.hammer" in names
        # cache layer rides along
        assert "cache.get" in names

        trace = observation.chrome_trace()
        self._assert_valid_chrome_trace(trace)
        # Worker pids appear on the shared timeline with their own labels.
        worker_pids = {
            event["pid"]
            for event in trace["traceEvents"]
            if event["ph"] == "M" and "repro-worker" in event["args"]["name"]
        }
        assert worker_pids, "4-worker sharded run should absorb worker-process spans"
        # The kernel span carries its dispatch plan and support attrs.
        kernel_events = [
            event for event in trace["traceEvents"]
            if event.get("ph") == "X" and event["name"] == "kernel.hammer"
        ]
        assert kernel_events and all("plan" in e["args"] for e in kernel_events)
        json.loads(json.dumps(trace))


class TestScenarioSweepAcceptance:
    """The PR-8 acceptance run: a traced `repro trace scenario-sweep`.

    Sharding is forced (identically for every run here) so the sweep's jobs
    exercise the executor/reduction layers; within a fixed shard layout the
    rows stay bit-identical traced or not, and the serial traced run's
    counters equal a --jobs 4 re-run's merged worker counters.
    """

    @pytest.fixture(autouse=True)
    def forced_sharding(self, monkeypatch):
        monkeypatch.setenv("REPRO_SAMPLE_SHARD_SHOTS", "1024")

    def test_traced_sweep_all_layers_and_jobs4_counter_parity(self, tmp_path):
        from repro.cli import build_parser, run_experiment, trace_report

        trace_path = tmp_path / "sweep_trace.json"
        args = build_parser().parse_args(
            ["trace", "scenario-sweep", "--trace-out", str(trace_path)]
        )
        traced = trace_report("scenario-sweep", args)
        trace = json.loads(trace_path.read_text(encoding="utf-8"))
        names = {e["name"] for e in trace["traceEvents"] if e["ph"] == "X"}
        assert {"phase.sample", "executor.shard", "reduction.merge", "kernel.hammer"} <= names

        # Untraced re-run: rows bit-identical with tracing off.
        plain_args = build_parser().parse_args(["scenario-sweep"])
        plain = run_experiment("scenario-sweep", plain_args)
        assert traced.rows == plain.rows

        # --jobs 4 observed re-run: merged worker counters match exactly.
        parallel_args = build_parser().parse_args(["scenario-sweep", "--jobs", "4"])
        with Observation() as observation:
            parallel = run_experiment("scenario-sweep", parallel_args)
        assert parallel.rows == plain.rows
        assert (
            observation.meta()["metrics"]["counters"]
            == traced.meta["obs"]["metrics"]["counters"]
        )


class TestReportMeta:
    def test_reports_carry_obs_meta_only_when_observed(self):
        config = BvStudyConfig(qubit_range=(5, 5), keys_per_size=1, shots=512, seed=8)
        plain = run_bv_study(config)
        assert "obs" not in plain.meta
        with Observation():
            observed = run_bv_study(config)
        assert observed.rows == plain.rows  # bit-identical rows, again
        obs = observed.meta["obs"]
        assert obs["metrics"]["counters"]["engine.runs"] >= 1
        assert obs["spans"]["events"] > 0
        assert "engine.run" in obs["spans"]["names"]
        json.loads(json.dumps(obs))  # the meta block is artifact-safe JSON
