"""Fuzz test: job pairs differing in exactly one dimension never collide.

The engine's content-addressed cache must keep two jobs apart whenever they
differ in any one of: circuit, backend, coupling map, calibration
fingerprint, or seed entropy.  Hypothesis draws a base job configuration and
a single dimension to perturb; the perturbed job's keys must differ from the
base exactly where that dimension participates (and a re-derivation of the
base keys must stay stable).
"""

from __future__ import annotations

from functools import lru_cache

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.calibration import synthetic_snapshot
from repro.engine.hashing import (
    circuit_fingerprint,
    ideal_key,
    noise_fingerprint,
    sample_key,
    transpile_key,
)
from repro.quantum.circuit import QuantumCircuit
from repro.quantum.coupling import linear_coupling, ring_coupling
from repro.quantum.device import DeviceProfile
from repro.quantum.noise import NoiseModel

_GATES_1Q = ("h", "s", "x", "z")
_BASIS = ("rz", "sx", "x", "cx")


@st.composite
def small_circuits(draw) -> QuantumCircuit:
    num_qubits = draw(st.integers(3, 5))
    circuit = QuantumCircuit(num_qubits, name="fuzz")
    for _ in range(draw(st.integers(1, 10))):
        if num_qubits >= 2 and draw(st.booleans()):
            a = draw(st.integers(0, num_qubits - 1))
            b = draw(st.integers(0, num_qubits - 2))
            if b >= a:
                b += 1
            circuit.append("cx", [a, b])
        else:
            circuit.append(draw(st.sampled_from(_GATES_1Q)), [draw(st.integers(0, num_qubits - 1))])
    return circuit


@lru_cache(maxsize=None)
def _calibrated(num_qubits: int, seed: int) -> NoiseModel:
    profile = DeviceProfile(
        name=f"fuzz-{num_qubits}",
        num_qubits=num_qubits,
        coupling_map=linear_coupling(num_qubits),
        noise_model=NoiseModel(),
    )
    return NoiseModel().with_calibration(synthetic_snapshot(profile, seed=seed, spread=0.3))


def _job_keys(circuit, noise_model, coupling, entropy, backend):
    """The three cache keys the engine derives for one job."""
    return (
        transpile_key(circuit, coupling, _BASIS),
        ideal_key(circuit, backend=backend),
        sample_key(circuit, noise_model, 1024, "bitflip", entropy, backend=backend),
    )


class TestSingleDimensionDivergence:
    @given(
        base=small_circuits(),
        other=small_circuits(),
        dimension=st.sampled_from(
            ["circuit", "backend", "coupling", "calibration", "entropy"]
        ),
        seed_pair=st.tuples(st.integers(0, 50), st.integers(0, 50)),
        entropy=st.tuples(st.integers(0, 2**31 - 1), st.integers(0, 1023)),
    )
    @settings(max_examples=120, deadline=None, derandomize=True)
    def test_perturbing_one_dimension_changes_the_right_key(
        self, base, other, dimension, seed_pair, entropy
    ):
        noise_model = _calibrated(base.num_qubits, seed_pair[0])
        coupling = linear_coupling(base.num_qubits)
        keys = _job_keys(base, noise_model, coupling, entropy, "statevector")
        # Stability: deriving the same keys twice is bit-identical.
        assert keys == _job_keys(base, noise_model, coupling, entropy, "statevector")

        if dimension == "circuit":
            assume(circuit_fingerprint(other) != circuit_fingerprint(base))
            perturbed = _job_keys(other, _calibrated(other.num_qubits, seed_pair[0]),
                                  linear_coupling(other.num_qubits), entropy, "statevector")
            assert perturbed[0] != keys[0]
            assert perturbed[1] != keys[1]
            assert perturbed[2] != keys[2]
        elif dimension == "backend":
            perturbed = _job_keys(base, noise_model, coupling, entropy, "stabilizer")
            assert perturbed[0] == keys[0]  # transpilation is backend-free
            assert perturbed[1] != keys[1]
            assert perturbed[2] != keys[2]
        elif dimension == "coupling":
            perturbed = _job_keys(base, noise_model, ring_coupling(base.num_qubits),
                                  entropy, "statevector")
            assert perturbed[0] != keys[0]
        elif dimension == "calibration":
            assume(seed_pair[0] != seed_pair[1])
            recalibrated = _calibrated(base.num_qubits, seed_pair[1])
            assume(
                noise_fingerprint(recalibrated) != noise_fingerprint(noise_model)
            )
            perturbed = _job_keys(base, recalibrated, coupling, entropy, "statevector")
            assert perturbed[2] != keys[2]
            assert perturbed[0] == keys[0] and perturbed[1] == keys[1]
        else:  # entropy
            shifted = (entropy[0], entropy[1] + 1)
            perturbed = _job_keys(base, noise_model, coupling, shifted, "statevector")
            assert perturbed[2] != keys[2]
            assert perturbed[0] == keys[0] and perturbed[1] == keys[1]


class TestKnownCollisionTraps:
    def test_uniform_vs_calibrated_with_identical_medians(self):
        uniform = NoiseModel()
        calibrated = _calibrated(4, 0)
        circuit = QuantumCircuit(4).h(0).cx(0, 1)
        assert sample_key(circuit, uniform, 1024, "bitflip", (0, 0)) != sample_key(
            circuit, calibrated, 1024, "bitflip", (0, 0)
        )

    def test_backends_split_the_ideal_namespace(self):
        circuit = QuantumCircuit(3).h(0).cx(0, 1)
        assert ideal_key(circuit, backend="statevector") != ideal_key(
            circuit, backend="stabilizer"
        )

    def test_entropy_tuple_length_matters(self):
        # (1, 2) vs (1,) then 2 folded elsewhere must not alias.
        circuit = QuantumCircuit(3).h(0)
        model = NoiseModel()
        assert sample_key(circuit, model, 64, "bitflip", (1, 2)) != sample_key(
            circuit, model, 64, "bitflip", (1,)
        )

    def test_method_and_shots_still_split_keys(self):
        circuit = QuantumCircuit(3).h(0)
        model = NoiseModel()
        base = sample_key(circuit, model, 64, "bitflip", (0, 0))
        assert base != sample_key(circuit, model, 128, "bitflip", (0, 0))
        assert base != sample_key(circuit, model, 64, "trajectory", (0, 0))
