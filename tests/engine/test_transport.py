"""Socket shard transport tests: protocol, workers, failure handling, faults.

The acceptance property mirrors the executor suite's: *which transport
delivered the chunks — and how badly it misbehaved on the way — must be
invisible in the results*.  Sharded runs over 1/2/4 socket hosts, with a
host killed mid-run, a deliberately slow host, and seed-driven injected
faults, all produce rows bit-identical to the serial executor; what the
transport *did* (retries, re-placements, dropped duplicates) is visible in
provenance and ``report.meta["planner"]["transport"]``, never in the rows.
"""

from __future__ import annotations

import socket
import struct
import time

import pytest

from repro.circuits.bv import bernstein_vazirani
from repro.engine import CircuitJob, ExecutionEngine
from repro.engine.executors import SerialShardExecutor, resolve_shard_executor
from repro.engine.transport import (
    ENV_SHARD_FAULTS,
    ENV_SHARD_HOSTS,
    ENV_SHARD_RETRIES,
    ENV_SHARD_TIMEOUT,
    FaultInjectingExecutor,
    ShardWorker,
    SocketHostExecutor,
    parse_fault_spec,
    parse_hostport,
    recv_message,
    send_message,
)
from repro.exceptions import EngineError, HostUnavailableError, TransportError
from repro.quantum.device import get_device


# Module-level so tasks ship to workers by reference.
def _double(task):
    return task * 2


def _fail_on_negative(task):
    if task < 0:
        raise ValueError(f"negative task {task}")
    return task


def _free_port_address() -> str:
    """A localhost address nothing is listening on."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return f"127.0.0.1:{probe.getsockname()[1]}"


@pytest.fixture
def worker():
    worker = ShardWorker().start()
    yield worker
    worker.stop()


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------
class TestProtocol:
    def test_roundtrip(self):
        left, right = socket.socketpair()
        try:
            payload = {"words": [1, 2, 3], "nested": ("a", None)}
            send_message(left, payload)
            assert recv_message(right) == payload
        finally:
            left.close()
            right.close()

    def test_truncated_frame_raises(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!Q", 100) + b"short")
            left.close()
            with pytest.raises(TransportError, match="connection closed"):
                recv_message(right)
        finally:
            right.close()

    def test_oversized_frame_claim_rejected(self):
        left, right = socket.socketpair()
        try:
            left.sendall(struct.pack("!Q", 1 << 40))
            with pytest.raises(TransportError, match="frame claims"):
                recv_message(right)
        finally:
            left.close()
            right.close()

    def test_parse_hostport(self):
        assert parse_hostport("worker-3:7641") == ("worker-3", 7641)
        assert parse_hostport(" 127.0.0.1:0 ") == ("127.0.0.1", 0)
        for bad in ("no-port", ":7641", "host:notaport", "host:70000"):
            with pytest.raises(EngineError):
                parse_hostport(bad)


# ---------------------------------------------------------------------------
# Worker server
# ---------------------------------------------------------------------------
class TestShardWorker:
    def test_serves_run_requests(self, worker):
        executor = SocketHostExecutor([worker.address], timeout=5.0)
        try:
            assert sorted(executor.run(_double, [1, 2, 3])) == [2, 4, 6]
            assert worker.requests_served == 3
        finally:
            executor.close()

    def test_ping(self, worker):
        executor = SocketHostExecutor([worker.address], timeout=5.0)
        try:
            assert executor.ping(worker.address) > 0
        finally:
            executor.close()

    def test_shutdown_op_stops_worker(self, worker):
        sock = socket.create_connection(parse_hostport(worker.address), timeout=5.0)
        try:
            send_message(sock, ("shutdown",))
            assert recv_message(sock) == ("ok", None)
        finally:
            sock.close()
        # stop() runs in the worker's handler thread; poll until the
        # listener is really gone.
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            try:
                with socket.create_connection(parse_hostport(worker.address), timeout=0.5):
                    time.sleep(0.01)
            except OSError:
                return
        pytest.fail("worker still accepting connections after shutdown op")

    def test_max_requests_budget_kills_worker(self):
        worker = ShardWorker(max_requests=2).start()
        try:
            executor = SocketHostExecutor(
                [worker.address], timeout=2.0, max_retries=1, backoff=0.01
            )
            # Two chunks succeed; the third finds the worker dead and, with
            # no surviving host, the transport fails terminally.
            with pytest.raises(TransportError, match="no shard host survives"):
                list(executor.run(_double, [1, 2, 3, 4]))
            assert worker.requests_served == 2
            executor.close()
        finally:
            worker.stop()

    def test_constructor_validation(self):
        with pytest.raises(EngineError, match="max_requests"):
            ShardWorker(max_requests=0)
        with pytest.raises(EngineError, match="delay"):
            ShardWorker(delay=-1.0)


# ---------------------------------------------------------------------------
# Socket executor failure handling
# ---------------------------------------------------------------------------
class TestSocketExecutor:
    def test_constructor_validation(self):
        with pytest.raises(EngineError, match="HOST:PORT"):
            SocketHostExecutor(["not-an-address"])
        with pytest.raises(EngineError, match="timeout"):
            SocketHostExecutor(["h:1"], timeout=0)
        with pytest.raises(EngineError, match="max_retries"):
            SocketHostExecutor(["h:1"], max_retries=-1)
        with pytest.raises(EngineError, match="backoff"):
            SocketHostExecutor(["h:1"], backoff=2.0, backoff_cap=1.0)

    def test_unreachable_single_host_raises(self):
        executor = SocketHostExecutor(
            [_free_port_address()], timeout=0.5, max_retries=1, backoff=0.01
        )
        with pytest.raises(TransportError):
            list(executor.run(_double, [1]))

    def test_run_on_host_exhausted_retries_raise_host_unavailable(self):
        address = _free_port_address()
        executor = SocketHostExecutor([address], timeout=0.5, max_retries=2, backoff=0.01)
        with pytest.raises(HostUnavailableError, match="after 3 attempts"):
            executor.run_on_host(address, _double, 1)
        assert executor.provenance()["retries"] == 2

    def test_ping_unreachable_host_raises_host_unavailable(self):
        # Regression: the dial used to happen outside the try, so a refused
        # connection escaped ping() as a raw OSError instead of the
        # HostUnavailableError callers are told to expect.
        address = _free_port_address()
        executor = SocketHostExecutor([address], timeout=0.5, max_retries=0, backoff=0.01)
        with pytest.raises(HostUnavailableError, match="did not answer ping"):
            executor.ping(address)

    def test_task_exception_is_terminal_not_retried(self, worker):
        executor = SocketHostExecutor([worker.address], timeout=5.0, max_retries=3)
        try:
            with pytest.raises(TransportError, match="negative task"):
                list(executor.run(_fail_on_negative, [1, -2, 3]))
            # Deterministic failure: no retry, no re-placement recorded.
            provenance = executor.provenance()
            assert provenance["retries"] == 0
            assert provenance["replacements"] == 0
        finally:
            executor.close()

    def test_dead_host_replaces_onto_survivor(self, worker):
        dead = _free_port_address()
        executor = SocketHostExecutor(
            [dead, worker.address], timeout=1.0, max_retries=1, backoff=0.01
        )
        try:
            results = sorted(executor.run(_double, [1, 2, 3, 4, 5, 6]))
            assert results == [2, 4, 6, 8, 10, 12]
            provenance = executor.provenance()
            assert provenance["dead_hosts"] == [dead]
            assert provenance["replacements"] >= 3
            assert provenance["hosts"][worker.address]["chunks"] == 6
        finally:
            executor.close()

    def test_mid_run_host_death_replaces_remaining_chunks(self):
        dying = ShardWorker(max_requests=2).start()
        survivor = ShardWorker().start()
        executor = SocketHostExecutor(
            [dying.address, survivor.address], timeout=2.0, max_retries=1, backoff=0.01
        )
        try:
            results = sorted(executor.run(_double, list(range(10))))
            assert results == [2 * value for value in range(10)]
            provenance = executor.provenance()
            assert provenance["dead_hosts"] == [dying.address]
            assert provenance["replacements"] >= 1
            assert provenance["chunks"] == 10
            # A later batch routes everything to the survivor immediately.
            assert sorted(executor.run(_double, [7, 8])) == [14, 16]
        finally:
            executor.close()
            dying.stop()
            survivor.stop()

    def test_empty_task_list(self, worker):
        executor = SocketHostExecutor([worker.address], timeout=5.0)
        try:
            assert list(executor.run(_double, [])) == []
        finally:
            executor.close()


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------
class TestFaultInjection:
    def test_every_kind_still_delivers_every_chunk(self):
        executor = FaultInjectingExecutor(
            SerialShardExecutor(), seed=3, drop=0.25, delay=0.25, duplicate=0.2, error=0.1
        )
        results = list(executor.run(_double, list(range(40))))
        counts = executor.provenance()["faults"]
        assert sum(counts.values()) > 0, "fractions this high must inject something"
        # Duplicates add deliveries; nothing is ever missing.
        assert len(results) == 40 + counts["duplicate"]
        assert sorted(set(results)) == [2 * value for value in range(40)]

    def test_fault_pattern_is_deterministic(self):
        def tally():
            executor = FaultInjectingExecutor(
                SerialShardExecutor(), seed=11, drop=0.3, duplicate=0.3
            )
            results = list(executor.run(_double, list(range(25))))
            return results, executor.provenance()["faults"]

        first_results, first_counts = tally()
        second_results, second_counts = tally()
        assert first_results == second_results
        assert first_counts == second_counts

    def test_dropped_chunks_are_reexecuted(self):
        executor = FaultInjectingExecutor(SerialShardExecutor(), seed=1, drop=1.0)
        results = list(executor.run(_double, list(range(8))))
        assert sorted(results) == [2 * value for value in range(8)]
        provenance = executor.provenance()
        assert provenance["faults"]["drop"] == 8
        assert provenance["fault_retries"] == 8

    def test_delay_reorders_but_loses_nothing(self):
        # A *mix* of delayed and prompt chunks reorders (all-delayed would
        # just shift the FIFO buffer); every seed in range(8) reorders here.
        executor = FaultInjectingExecutor(
            SerialShardExecutor(), seed=2, delay=0.5, delay_window=3
        )
        results = list(executor.run(_double, list(range(10))))
        assert results != [2 * value for value in range(10)], "delay mix must reorder"
        assert sorted(results) == [2 * value for value in range(10)]

    def test_wraps_socket_executor(self, worker):
        executor = FaultInjectingExecutor(
            SocketHostExecutor([worker.address], timeout=5.0),
            seed=5,
            drop=0.3,
            duplicate=0.2,
        )
        results = list(executor.run(_double, list(range(12))))
        assert sorted(set(results)) == [2 * value for value in range(12)]
        provenance = executor.provenance()
        assert provenance["inner"]["executor"] == "socket"
        # Re-executed drops go through the socket too: chunk count exceeds
        # the task count by exactly the number of drop/error retries.
        assert provenance["inner"]["chunks"] == 12 + provenance["fault_retries"]
        executor.close()

    def test_validation(self):
        serial = SerialShardExecutor()
        with pytest.raises(EngineError, match="wraps a ShardExecutor"):
            FaultInjectingExecutor(object())
        with pytest.raises(EngineError, match="in \\[0, 1\\]"):
            FaultInjectingExecutor(serial, drop=1.5)
        with pytest.raises(EngineError, match="sum to <= 1"):
            FaultInjectingExecutor(serial, drop=0.6, duplicate=0.6)
        with pytest.raises(EngineError, match="delay_window"):
            FaultInjectingExecutor(serial, delay_window=0)


# ---------------------------------------------------------------------------
# Authenticated frames end-to-end
# ---------------------------------------------------------------------------
class TestAuthenticatedTransport:
    KEY = b"s3cret-shard-key"

    def test_keyed_roundtrip(self):
        worker = ShardWorker(auth_key=self.KEY).start()
        try:
            executor = SocketHostExecutor([worker.address], timeout=5.0, auth_key=self.KEY)
            assert sorted(executor.run(_double, [1, 2, 3])) == [2, 4, 6]
            assert executor.ping(worker.address) > 0
            executor.close()
        finally:
            worker.stop()

    def test_keyed_worker_rejects_unkeyed_client(self):
        # The worker verifies the digest before unpickling and drops the
        # connection; with no retries left the client sees the host as gone.
        worker = ShardWorker(auth_key=self.KEY).start()
        try:
            executor = SocketHostExecutor(
                [worker.address], timeout=1.0, max_retries=0, backoff=0.01, auth_key=None
            )
            with pytest.raises(HostUnavailableError):
                executor.run_on_host(worker.address, _double, 1)
            assert worker.requests_served == 0, "tampered frame must never execute"
            executor.close()
        finally:
            worker.stop()

    def test_key_mismatch_rejected(self):
        worker = ShardWorker(auth_key=self.KEY).start()
        try:
            executor = SocketHostExecutor(
                [worker.address],
                timeout=1.0,
                max_retries=0,
                backoff=0.01,
                auth_key=b"some-other-key",
            )
            with pytest.raises(HostUnavailableError):
                executor.run_on_host(worker.address, _double, 1)
            assert worker.requests_served == 0
            executor.close()
        finally:
            worker.stop()


# ---------------------------------------------------------------------------
# Environment wiring
# ---------------------------------------------------------------------------
class TestEnvWiring:
    def test_socket_requires_hosts(self, monkeypatch):
        monkeypatch.delenv(ENV_SHARD_HOSTS, raising=False)
        with pytest.raises(EngineError, match=ENV_SHARD_HOSTS):
            resolve_shard_executor("socket", None)

    def test_socket_reads_hosts_and_knobs(self, monkeypatch, worker):
        monkeypatch.setenv(ENV_SHARD_HOSTS, f"{worker.address}, {worker.address}")
        monkeypatch.setenv(ENV_SHARD_TIMEOUT, "7.5")
        monkeypatch.setenv(ENV_SHARD_RETRIES, "5")
        executor = resolve_shard_executor("socket", None)
        assert isinstance(executor, SocketHostExecutor)
        assert executor.hosts == (worker.address, worker.address)
        assert executor.timeout == 7.5
        assert executor.max_retries == 5

    def test_bad_knobs_rejected(self, monkeypatch):
        monkeypatch.setenv(ENV_SHARD_HOSTS, "h:1")
        monkeypatch.setenv(ENV_SHARD_TIMEOUT, "soon")
        with pytest.raises(EngineError, match=ENV_SHARD_TIMEOUT):
            resolve_shard_executor("socket", None)

    def test_bad_host_entry_rejected_eagerly_by_name(self, monkeypatch):
        # A typo'd entry must fail at startup naming the offending token,
        # not mid-run when a chunk first routes to it.
        monkeypatch.setenv(ENV_SHARD_HOSTS, "127.0.0.1:1, bogus")
        with pytest.raises(EngineError, match="entry 'bogus' is invalid"):
            resolve_shard_executor("socket", None)

    def test_faults_env_wraps_any_named_executor(self, monkeypatch):
        monkeypatch.setenv(ENV_SHARD_FAULTS, "drop=0.2,duplicate=0.1,seed=7")
        executor = resolve_shard_executor("serial", None)
        assert isinstance(executor, FaultInjectingExecutor)
        assert executor.name == "fault(serial)"
        assert executor.seed == 7
        assert executor.fractions["drop"] == 0.2
        monkeypatch.delenv(ENV_SHARD_FAULTS)
        assert isinstance(resolve_shard_executor("serial", None), SerialShardExecutor)

    def test_parse_fault_spec(self):
        assert parse_fault_spec("drop=0.2, error=0.1 ,seed=3,delay_window=5") == {
            "drop": 0.2,
            "error": 0.1,
            "seed": 3,
            "delay_window": 5,
        }
        assert parse_fault_spec("") == {}
        with pytest.raises(EngineError, match="key=value"):
            parse_fault_spec("drop")
        with pytest.raises(EngineError, match="unknown fault spec key"):
            parse_fault_spec("teleport=0.5")
        with pytest.raises(EngineError, match="bad fault spec value"):
            parse_fault_spec("drop=lots")


# ---------------------------------------------------------------------------
# Engine acceptance: bit-identity under faults, provenance in planner meta
# ---------------------------------------------------------------------------
@pytest.fixture(scope="module")
def device():
    return get_device("ibm-paris")


def _sharded_run(device, **engine_kwargs):
    """One 40k-shot job sharded into 8k chunks; returns (distribution, stats)."""
    engine = ExecutionEngine(sample_shard_shots=8_192, **engine_kwargs)
    try:
        job = CircuitJob(
            job_id="shard-transport",
            circuit=bernstein_vazirani("10110"),
            shots=40_000,
            noise_model=device.noise_model,
        )
        result = engine.run([job], seed=7)[0]
        return result.noisy, engine.last_run_stats
    finally:
        engine.close()


class TestEngineSocketBitIdentity:
    def test_socket_hosts_bit_identical_to_serial(self, device):
        reference, _ = _sharded_run(device, max_workers=1, shard_executor="serial")
        workers = [ShardWorker().start() for _ in range(4)]
        try:
            for num_hosts in (1, 2, 4):
                executor = SocketHostExecutor(
                    [w.address for w in workers[:num_hosts]], timeout=10.0
                )
                noisy, stats = _sharded_run(
                    device, max_workers=1, shard_executor=executor
                )
                assert (
                    noisy.probabilities() == reference.probabilities()
                ), f"hosts={num_hosts}"
                assert stats.transport["executor"] == "socket"
                assert stats.transport["chunks"] == 5
        finally:
            for w in workers:
                w.stop()

    def test_faulty_delayed_and_dying_hosts_bit_identical(self, device):
        """The acceptance scenario: one slow host, one killed mid-run,
        drop/duplicate faults on top — rows identical, provenance visible."""
        reference, _ = _sharded_run(device, max_workers=1, shard_executor="serial")
        dying = ShardWorker(max_requests=2).start()
        delayed = ShardWorker(delay=0.05).start()
        try:
            executor = FaultInjectingExecutor(
                SocketHostExecutor(
                    [dying.address, delayed.address],
                    timeout=10.0,
                    max_retries=1,
                    backoff=0.01,
                ),
                seed=5,
                drop=0.2,
                duplicate=0.2,
            )
            noisy, stats = _sharded_run(device, max_workers=1, shard_executor=executor)
            assert noisy.probabilities() == reference.probabilities()
            transport = stats.transport
            assert transport["inner"]["dead_hosts"] == [dying.address]
            assert transport["inner"]["replacements"] >= 1
            assert transport["inner"]["retries"] >= 1
            # Injected duplicates were delivered and dropped at the tree.
            if transport["faults"]["duplicate"]:
                assert stats.duplicate_chunks_dropped >= 1
        finally:
            dying.stop()
            delayed.stop()

    def test_env_resolved_socket_run_with_faults(self, device, monkeypatch):
        """The CI-smoke path: everything configured through the environment."""
        reference, _ = _sharded_run(device, max_workers=1, shard_executor="serial")
        workers = [ShardWorker().start() for _ in range(2)]
        try:
            monkeypatch.setenv(
                ENV_SHARD_HOSTS, ",".join(w.address for w in workers)
            )
            monkeypatch.setenv(ENV_SHARD_FAULTS, "drop=0.2,duplicate=0.2,seed=5")
            monkeypatch.setenv(ENV_SHARD_TIMEOUT, "10")
            monkeypatch.setenv("REPRO_SHARD_EXECUTOR", "socket")
            noisy, stats = _sharded_run(device, max_workers=1)
            assert noisy.probabilities() == reference.probabilities()
            assert stats.planner_decisions["shard-executor"] == {
                "fault(socket)/override": 1
            }
            assert stats.transport["inner"]["executor"] == "socket"
        finally:
            for w in workers:
                w.stop()

    def test_planner_meta_transport_block(self, device, monkeypatch):
        from repro.experiments.runner import ExperimentReport, attach_engine_meta

        worker = ShardWorker().start()
        engine = ExecutionEngine(
            max_workers=1,
            sample_shard_shots=8_192,
            shard_executor=SocketHostExecutor([worker.address], timeout=10.0),
        )
        try:
            job = CircuitJob(
                job_id="meta-transport",
                circuit=bernstein_vazirani("10110"),
                shots=40_000,
                noise_model=device.noise_model,
            )
            engine.run([job], seed=7)
            report = ExperimentReport(name="meta-transport")
            attach_engine_meta(report, engine)
        finally:
            engine.close()
            worker.stop()
        planner = report.meta["planner"]
        assert planner["transport"]["executor"] == "socket"
        assert planner["transport"]["chunks"] == 5
        assert planner["transport"]["hosts"][worker.address]["chunks"] == 5
        assert planner["reduction"]["duplicate_chunks_dropped"] == 0
        # Serial-path reports carry no transport block at all.
        assert "transport" not in attach_engine_meta(
            ExperimentReport(name="plain"), _PlainEngine(device)
        ).meta.get("planner", {})


class _PlainEngine:
    """Minimal engine stand-in: lifetime stats without transport."""

    def __init__(self, device):
        engine = ExecutionEngine(max_workers=1, sample_shard_shots=8_192)
        try:
            job = CircuitJob(
                job_id="plain",
                circuit=bernstein_vazirani("10110"),
                shots=40_000,
                noise_model=device.noise_model,
            )
            engine.run([job], seed=7)
            self.lifetime_stats = engine.lifetime_stats
            self.cache = engine.cache
        finally:
            engine.close()
