"""Property and unit tests for the deterministic reduction tree.

The contract under test: a :class:`ReductionTree` fed the same chunk
segments in *any* completion order produces a Distribution bit-identical to
the flat ``merge_counted_chunks`` reference — for any segment count and for
register widths straddling the one-word/two-word boundary (63/64/65 bits).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstring import PackedOutcomes
from repro.engine.reduction import (
    ReductionTree,
    merge_sorted_segments,
    tree_merge_segments,
)
from repro.exceptions import EngineError, MergeError, NoiseModelError
from repro.quantum.sampler import merge_counted_chunks


def _random_segments(rng: np.random.Generator, num_segments: int, num_bits: int):
    """Synthetic sharded partial histograms in aggregation order."""
    segments = []
    for _ in range(num_segments):
        rows = int(rng.integers(1, 40))
        bits = rng.integers(0, 2, size=(rows, num_bits), dtype=np.uint8)
        packed, counts = PackedOutcomes.aggregate_bit_matrix(bits)
        segments.append((packed.words, counts))
    return segments


class TestTreeEqualsFlatMerge:
    @given(
        num_segments=st.integers(min_value=1, max_value=17),
        num_bits=st.sampled_from([5, 63, 64, 65]),
        seed=st.integers(min_value=0, max_value=2**20),
        order_seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=80, deadline=None, derandomize=True)
    def test_tree_merge_bit_identical_to_flat_merge(
        self, num_segments, num_bits, seed, order_seed
    ):
        rng = np.random.default_rng(seed)
        segments = _random_segments(rng, num_segments, num_bits)
        flat = merge_counted_chunks(segments, num_bits)

        order = np.random.default_rng(order_seed).permutation(num_segments)
        tree = ReductionTree(num_segments, num_bits)
        for index in order:
            tree.add(int(index), *segments[index])
        assert tree.complete
        merged = tree.distribution()

        assert merged == flat
        assert np.array_equal(merged.packed().words, flat.packed().words)
        # Dict equality is exact float comparison: bit-identity, not isclose.
        assert merged.probabilities() == flat.probabilities()

    @given(
        num_segments=st.integers(min_value=2, max_value=12),
        seed=st.integers(min_value=0, max_value=2**20),
    )
    @settings(max_examples=40, deadline=None, derandomize=True)
    def test_every_completion_order_gives_identical_bits(self, num_segments, seed):
        rng = np.random.default_rng(seed)
        segments = _random_segments(rng, num_segments, 64)
        reference = tree_merge_segments(segments, 64)
        for order_seed in range(3):
            order = np.random.default_rng((seed, order_seed)).permutation(num_segments)
            tree = ReductionTree(num_segments, 64)
            for index in order:
                tree.add(int(index), *segments[index])
            merged = tree.distribution()
            assert np.array_equal(merged.packed().words, reference.packed().words)
            assert merged.probabilities() == reference.probabilities()


class TestMergeSortedSegments:
    def test_disjoint_and_overlapping_supports(self):
        left = (np.array([[1], [5]], dtype=np.uint64), np.array([2.0, 3.0]))
        right = (np.array([[0], [5], [9]], dtype=np.uint64), np.array([1.0, 4.0, 6.0]))
        words, counts = merge_sorted_segments(left, right)
        assert words[:, 0].tolist() == [0, 1, 5, 9]
        assert counts.tolist() == [1.0, 2.0, 7.0, 6.0]

    def test_word_count_mismatch_raises(self):
        left = (np.zeros((1, 1), dtype=np.uint64), np.ones(1))
        right = (np.zeros((1, 2), dtype=np.uint64), np.ones(1))
        with pytest.raises(MergeError):
            merge_sorted_segments(left, right)


class TestTreeMechanics:
    def test_stats_in_order_completion(self):
        segments = _random_segments(np.random.default_rng(3), 8, 16)
        tree = ReductionTree(8, 16)
        for index, (words, counts) in enumerate(segments):
            tree.add(index, words, counts)
        stats = tree.stats()
        assert stats.num_leaves == 8
        assert stats.depth == 3
        assert stats.merges == 7
        # In-order arrival holds at most one live segment per level.
        assert stats.peak_live_segments <= stats.depth + 1

    def test_non_power_of_two_leaf_counts(self):
        for count in (1, 3, 5, 6, 7, 11):
            segments = _random_segments(np.random.default_rng(count), count, 10)
            merged = tree_merge_segments(segments, 10)
            flat = merge_counted_chunks(segments, 10)
            assert np.array_equal(merged.packed().words, flat.packed().words)
            assert merged.probabilities() == flat.probabilities()

    def test_incomplete_tree_refuses_result(self):
        tree = ReductionTree(3, 8)
        with pytest.raises(MergeError, match="incomplete"):
            tree.result_segment()

    def test_out_of_range_and_duplicate_indices(self):
        ((words, counts),) = _random_segments(np.random.default_rng(0), 1, 8)
        tree = ReductionTree(2, 8)
        with pytest.raises(MergeError):
            tree.add(2, words, counts)
        tree.add(0, words, counts)
        with pytest.raises(MergeError, match="twice"):
            tree.add(0, words, counts)

    def test_arrived_tracks_deliveries(self):
        # The polite pre-check an at-least-once transport uses to drop a
        # late duplicate before tripping add()'s hard guard.
        ((words, counts),) = _random_segments(np.random.default_rng(1), 1, 8)
        tree = ReductionTree(2, 8)
        assert not tree.arrived(0) and not tree.arrived(1)
        tree.add(0, words, counts)
        assert tree.arrived(0) and not tree.arrived(1)
        with pytest.raises(MergeError, match="outside"):
            tree.arrived(2)

    def test_zero_leaves_rejected(self):
        with pytest.raises(MergeError):
            ReductionTree(0, 4)
        with pytest.raises(MergeError):
            tree_merge_segments([], 4)


class TestMergeErrorCompatibility:
    def test_merge_error_is_engine_error_only(self):
        # The one-release NoiseModelError compatibility shim is gone:
        # MergeError is a plain EngineError now.
        assert issubclass(MergeError, EngineError)
        assert not issubclass(MergeError, NoiseModelError)

    def test_flat_merge_raises_merge_error_on_empty(self):
        with pytest.raises(MergeError):
            merge_counted_chunks([], 4)
