"""Property tests for the shard transport: parsers and HMAC framing.

Two families:

* Parser round-trips — any valid ``host:port`` / fault spec survives a
  format→parse cycle unchanged, and any malformed input is rejected with
  the offending token named in the error message (a typo'd
  ``REPRO_SHARD_HOSTS`` entry must be *identifiable*, not just fatal).
* Authenticated framing — flipping **any** single byte of an authenticated
  frame (header, either digest, or payload) raises
  :class:`~repro.exceptions.AuthenticationError`, and the unpickler never
  sees a byte of the tampered frame.
"""

from __future__ import annotations

from unittest import mock

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.transport import (
    FAULT_KINDS,
    frame_bytes,
    parse_fault_spec,
    parse_hostport,
    recv_message,
)
from repro.exceptions import AuthenticationError, EngineError, TransportError


class _BufferSock:
    """A ``recv``-only socket fed from a byte string (no real fd churn)."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._pos = 0

    def recv(self, length: int) -> bytes:
        chunk = self._data[self._pos : self._pos + length]
        self._pos += len(chunk)
        return chunk


_HOST_CHARS = st.sampled_from("abcdefghijklmnopqrstuvwxyz0123456789.-_")
_hosts = st.text(alphabet=_HOST_CHARS, min_size=1, max_size=24)
_ports = st.integers(min_value=0, max_value=65535)


class TestParseHostportProperties:
    @given(host=_hosts, port=_ports)
    def test_roundtrip_valid(self, host, port):
        assert parse_hostport(f"{host}:{port}") == (host, port)

    @given(token=st.text(alphabet=_HOST_CHARS, min_size=1, max_size=24))
    def test_missing_port_rejected_naming_token(self, token):
        with pytest.raises(EngineError) as excinfo:
            parse_hostport(token)
        assert repr(token) in str(excinfo.value)

    @given(host=_hosts, junk=st.text(alphabet="abcdefxyz", min_size=1, max_size=8))
    def test_non_integer_port_rejected_naming_token(self, host, junk):
        value = f"{host}:{junk}"
        with pytest.raises(EngineError) as excinfo:
            parse_hostport(value)
        assert repr(value) in str(excinfo.value)

    @given(host=_hosts, port=st.integers(min_value=65536, max_value=10**9))
    def test_out_of_range_port_rejected_naming_token(self, host, port):
        value = f"{host}:{port}"
        with pytest.raises(EngineError) as excinfo:
            parse_hostport(value)
        assert repr(value) in str(excinfo.value)


_fractions = st.floats(min_value=0.0, max_value=1.0, allow_nan=False)


class TestParseFaultSpecProperties:
    @given(
        kwargs=st.dictionaries(st.sampled_from(FAULT_KINDS), _fractions, max_size=4),
        seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**31)),
        delay_window=st.one_of(st.none(), st.integers(min_value=1, max_value=64)),
    )
    def test_roundtrip_valid(self, kwargs, seed, delay_window):
        expected = dict(kwargs)
        if seed is not None:
            expected["seed"] = seed
        if delay_window is not None:
            expected["delay_window"] = delay_window
        spec = ",".join(f"{key}={value!r}" for key, value in expected.items())
        assert parse_fault_spec(spec) == expected

    @given(key=st.text(alphabet="qwertyuiop", min_size=1, max_size=12))
    def test_unknown_key_rejected_naming_token(self, key):
        if key in FAULT_KINDS or key in ("seed", "delay_window"):
            return
        with pytest.raises(EngineError) as excinfo:
            parse_fault_spec(f"{key}=0.5")
        assert repr(key) in str(excinfo.value)

    @given(part=st.text(alphabet="abcdefgh0123456789.", min_size=1, max_size=12))
    def test_missing_equals_rejected_naming_token(self, part):
        with pytest.raises(EngineError) as excinfo:
            parse_fault_spec(part)
        assert repr(part) in str(excinfo.value)

    @given(kind=st.sampled_from(FAULT_KINDS), junk=st.text(alphabet="xyz", min_size=1, max_size=6))
    def test_bad_value_rejected_naming_token(self, kind, junk):
        with pytest.raises(EngineError) as excinfo:
            parse_fault_spec(f"{kind}={junk}")
        assert repr(f"{kind}={junk}") in str(excinfo.value)


_payloads = st.one_of(
    st.integers(),
    st.text(max_size=64),
    st.binary(max_size=64),
    st.tuples(st.text(max_size=8), st.integers(), st.lists(st.integers(), max_size=8)),
)
_keys = st.binary(min_size=1, max_size=32)


class TestHmacFramingProperties:
    @given(payload=_payloads, key=_keys)
    def test_untampered_frame_roundtrips(self, payload, key):
        frame = frame_bytes(payload, key)
        assert recv_message(_BufferSock(frame), key) == payload

    @settings(max_examples=200)
    @given(payload=_payloads, key=_keys, data=st.data())
    def test_any_flipped_byte_authfails_before_unpickle(self, payload, key, data):
        frame = bytearray(frame_bytes(payload, key))
        index = data.draw(st.integers(min_value=0, max_value=len(frame) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        frame[index] ^= flip
        with mock.patch(
            "repro.engine.transport.pickle.loads",
            side_effect=AssertionError("unpickler touched a tampered frame"),
        ):
            with pytest.raises(AuthenticationError):
                recv_message(_BufferSock(bytes(frame)), key)

    @given(payload=_payloads, key=_keys)
    def test_unauthenticated_frame_rejected_by_keyed_receiver(self, payload, key):
        # A short unauthenticated frame starves the 32-byte digest read
        # (TransportError at EOF); a longer one fails verification
        # (AuthenticationError).  Either way: rejected, never unpickled.
        frame = frame_bytes(payload, key=None)
        with mock.patch(
            "repro.engine.transport.pickle.loads",
            side_effect=AssertionError("unpickler touched an unauthenticated frame"),
        ):
            with pytest.raises((AuthenticationError, TransportError)):
                recv_message(_BufferSock(frame), key)

    @given(payload=_payloads, key=_keys, other=_keys)
    def test_key_mismatch_rejected(self, payload, key, other):
        if key == other:
            return
        frame = frame_bytes(payload, key)
        with pytest.raises(AuthenticationError):
            recv_message(_BufferSock(frame), other)
