"""Span tracing: recorder semantics, nesting, ring bounds, Chrome export."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.obs import Observation
from repro.obs.trace import (
    DEFAULT_MAX_EVENTS,
    TraceRecorder,
    active_recorder,
    record_span,
    trace_span,
    tracing_active,
)

#: Minimal schema of a Chrome trace-event JSON object ("object format").
#: chrome://tracing and Perfetto both require traceEvents; "X" events need
#: name/ts/dur/pid/tid, "M" metadata events need name/pid/args.
def assert_valid_chrome_trace(trace: dict) -> None:
    assert isinstance(trace, dict)
    assert isinstance(trace["traceEvents"], list)
    assert trace["displayTimeUnit"] in ("ms", "ns")
    assert isinstance(trace["otherData"], dict)
    assert trace["otherData"]["dropped_events"] >= 0
    for event in trace["traceEvents"]:
        assert isinstance(event, dict)
        assert event["ph"] in ("X", "M")
        assert isinstance(event["name"], str) and event["name"]
        assert isinstance(event["pid"], int)
        assert isinstance(event["tid"], int)
        if event["ph"] == "X":
            assert isinstance(event["cat"], str)
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert isinstance(event["args"], dict)
        else:
            assert event["name"] == "process_name"
            assert "name" in event["args"]
    # Strict JSON round-trip: the artifact must serialise as-is.
    json.loads(json.dumps(trace))


class TestDisabledPath:
    def test_inactive_by_default(self):
        assert not tracing_active()
        assert active_recorder() is None

    def test_trace_span_returns_shared_null_span(self):
        first = trace_span("kernel.hammer", support=8)
        second = trace_span("cache.get")
        assert first is second  # the singleton: zero allocation when disabled
        with first as span:
            span.set(plan="dense")  # must be a silent no-op

    def test_record_span_is_noop(self):
        record_span("engine.run", 0.5, num_jobs=3)  # nothing to assert: no crash


class TestRecording:
    def test_span_records_complete_event(self):
        with Observation() as observation:
            with trace_span("kernel.hammer", support=64, width=10) as span:
                span.set(plan="tiled")
        events = observation.recorder.events()
        assert len(events) == 1
        event = events[0]
        assert event["name"] == "kernel.hammer"
        assert event["cat"] == "kernel"
        assert event["pid"] == os.getpid()
        assert event["tid"] == threading.get_ident()
        assert event["args"]["support"] == 64
        assert event["args"]["plan"] == "tiled"
        assert event["args"]["depth"] == 0
        assert event["dur_us"] >= 0.0

    def test_nested_spans_record_depth(self):
        with Observation() as observation:
            with trace_span("engine.run"):
                with trace_span("executor.shard"):
                    with trace_span("reduction.merge"):
                        pass
        depths = {e["name"]: e["args"]["depth"] for e in observation.recorder.events()}
        assert depths == {"engine.run": 0, "executor.shard": 1, "reduction.merge": 2}

    def test_record_span_defaults_wall_start_and_sees_depth(self):
        with Observation() as observation:
            with trace_span("engine.run"):
                record_span("phase.sample", 0.25, shots=1024)
        by_name = {e["name"]: e for e in observation.recorder.events()}
        phase = by_name["phase.sample"]
        assert phase["cat"] == "phase"
        assert phase["dur_us"] == pytest.approx(0.25e6)
        assert phase["args"]["depth"] == 1  # inside the live engine.run span
        assert phase["args"]["shots"] == 1024
        # wall defaults to "now - duration": starts before the enclosing span ends
        assert phase["wall"] <= by_name["engine.run"]["wall"] + 1.0

    def test_span_survives_exceptions(self):
        with Observation() as observation:
            with pytest.raises(ValueError):
                with trace_span("engine.task.sample_group"):
                    raise ValueError("boom")
        assert observation.recorder.span_names() == {"engine.task.sample_group"}


class TestRingBuffer:
    def test_capacity_bounds_and_drop_counter(self):
        recorder = TraceRecorder(max_events=4)
        for index in range(10):
            recorder.record({"name": f"s{index}", "cat": "s", "wall": 0.0,
                             "dur_us": 1.0, "pid": 1, "tid": 1, "args": {}})
        assert recorder.num_events == 4
        assert recorder.dropped == 6
        # Oldest events fall out first.
        assert [event["name"] for event in recorder.events()] == ["s6", "s7", "s8", "s9"]

    def test_default_capacity(self):
        assert TraceRecorder().max_events == DEFAULT_MAX_EVENTS

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError):
            TraceRecorder(max_events=0)


class TestChromeExport:
    def test_schema_and_metadata(self):
        recorder = TraceRecorder()
        worker_pid = os.getpid() + 1
        recorder.record({"name": "engine.run", "cat": "engine", "wall": recorder.epoch,
                         "dur_us": 10.0, "pid": os.getpid(), "tid": 1, "args": {"depth": 0}})
        recorder.absorb([
            {"name": "executor.shard", "cat": "executor", "wall": recorder.epoch + 0.001,
             "dur_us": 5.0, "pid": worker_pid, "tid": 2, "args": {"depth": 0}},
        ])
        trace = recorder.chrome_trace()
        assert_valid_chrome_trace(trace)
        metadata = [e for e in trace["traceEvents"] if e["ph"] == "M"]
        assert {e["pid"] for e in metadata} == {os.getpid(), worker_pid}
        labels = {e["pid"]: e["args"]["name"] for e in metadata}
        assert labels[os.getpid()].startswith("repro ")
        assert labels[worker_pid].startswith("repro-worker ")

    def test_ts_relative_to_epoch_never_negative(self):
        recorder = TraceRecorder()
        recorder.record({"name": "early", "cat": "early", "wall": recorder.epoch - 5.0,
                         "dur_us": 1.0, "pid": 1, "tid": 1, "args": {}})
        recorder.record({"name": "late", "cat": "late", "wall": recorder.epoch + 2.0,
                         "dur_us": 1.0, "pid": 1, "tid": 1, "args": {}})
        complete = [e for e in recorder.chrome_trace()["traceEvents"] if e["ph"] == "X"]
        assert complete[0]["ts"] == 0.0  # clamped, not negative
        assert complete[1]["ts"] == pytest.approx(2e6)
