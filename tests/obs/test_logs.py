"""Structured logging: ring buffer, warn-once keys, REPRO_LOG stderr modes."""

from __future__ import annotations

import json
import os

import pytest

from repro.obs.logs import (
    ENV_LOG,
    LOG_MODES,
    absorb_records,
    current_sequence,
    get_logger,
    log_mode,
    log_records,
    records_since,
    reset_logs,
)


@pytest.fixture(autouse=True)
def clean_logs():
    """Each test starts with an empty ring and no warn-once state."""
    reset_logs()
    yield
    reset_logs()


@pytest.fixture
def quiet(monkeypatch):
    monkeypatch.setenv(ENV_LOG, "off")


class TestRing:
    def test_records_carry_structure_and_sequence(self, quiet):
        logger = get_logger("repro.test")
        first = logger.warning("gpu-fallback", "falling back", plan="tiled")
        second = logger.info("profile-loaded", "profile active", path="/tmp/p.json")
        assert first["seq"] == 1 and second["seq"] == 2
        assert first["level"] == "warning" and second["level"] == "info"
        assert first["logger"] == "repro.test"
        assert first["event"] == "gpu-fallback"
        assert first["fields"] == {"plan": "tiled"}
        assert first["pid"] == os.getpid()
        assert log_records() == [first, second]

    def test_records_since_slices_exclusively(self, quiet):
        logger = get_logger("repro.test")
        logger.info("a", "first")
        mark = current_sequence()
        logger.info("b", "second")
        sliced = records_since(mark)
        assert [record["event"] for record in sliced] == ["b"]
        assert records_since(current_sequence()) == []

    def test_absorb_resequences_worker_records(self, quiet):
        logger = get_logger("repro.parent")
        logger.info("parent", "before")
        # Worker records arrive with the *worker's* local sequence numbers.
        absorb_records([
            {"seq": 1, "level": "warning", "logger": "repro.worker",
             "event": "w", "message": "from worker", "fields": {}, "pid": 999},
        ])
        records = log_records()
        assert [record["seq"] for record in records] == [1, 2]
        assert records[-1]["logger"] == "repro.worker"


class TestWarnOnce:
    def test_second_call_with_same_key_is_dropped(self, quiet):
        logger = get_logger("repro.core.kernels")
        assert logger.warn_once("gpu-fallback", "falling back", plan="tiled") is not None
        assert logger.warn_once("gpu-fallback", "falling back again") is None
        assert len(log_records()) == 1

    def test_distinct_keys_both_emit(self, quiet):
        logger = get_logger("repro.test")
        assert logger.warn_once("key-a", "a") is not None
        assert logger.warn_once("key-b", "b") is not None

    def test_key_doubles_as_event(self, quiet):
        get_logger("repro.test").warn_once("profile-corrupt", "ignoring profile")
        assert log_records()[0]["event"] == "profile-corrupt"


class TestStderrModes:
    def test_default_mode_is_text(self, monkeypatch):
        monkeypatch.delenv(ENV_LOG, raising=False)
        assert log_mode() == "text"

    def test_unknown_mode_falls_back_to_text(self, monkeypatch):
        monkeypatch.setenv(ENV_LOG, "verbose")
        assert log_mode() == "text"

    def test_modes_are_documented(self):
        assert set(LOG_MODES) == {"text", "json", "off"}

    def test_text_rendering(self, monkeypatch, capsys):
        monkeypatch.setenv(ENV_LOG, "text")
        get_logger("repro.engine.cache").warning(
            "cache-persist-failed", "continuing memory-only", namespace="sample"
        )
        err = capsys.readouterr().err
        assert "[repro:warning] repro.engine.cache cache-persist-failed:" in err
        assert "namespace=sample" in err

    def test_json_rendering_is_one_object_per_line(self, monkeypatch, capsys):
        monkeypatch.setenv(ENV_LOG, "json")
        get_logger("repro.test").warning("gpu-fallback", "falling back", plan="tiled")
        lines = [line for line in capsys.readouterr().err.splitlines() if line]
        record = json.loads(lines[-1])
        assert record["event"] == "gpu-fallback"
        assert record["fields"] == {"plan": "tiled"}

    def test_off_mode_silences_stderr_but_keeps_ring(self, monkeypatch, capsys):
        monkeypatch.setenv(ENV_LOG, "off")
        get_logger("repro.test").warning("quiet", "nothing on stderr")
        assert capsys.readouterr().err == ""
        assert len(log_records()) == 1


class TestGpuFallbackRouting:
    def test_kernel_fallback_emits_structured_record_and_warning(self, quiet, monkeypatch):
        """The PR-8 contract: the GPU fallback is artifact-visible, not stderr-only."""
        import warnings

        from repro.core import kernels

        monkeypatch.setattr(kernels, "gpu_available", lambda: False)
        # Clear the process-global once-guards so this test is order-independent
        # (reset_logs cleared the logger's, _GPU_STATE carries the legacy one).
        monkeypatch.setitem(kernels._GPU_STATE, "warned", False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert kernels._gpu_plan_or_fallback() == "tiled"
        events = [record["event"] for record in log_records()]
        assert "gpu-fallback" in events
        # The once-guard drops the second emission entirely.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert kernels._gpu_plan_or_fallback() == "tiled"
        assert events.count("gpu-fallback") == 1
