"""Observation contexts and the worker payload round-trip."""

from __future__ import annotations

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import (
    Observation,
    absorb_payload,
    counter_add,
    current_observation,
    metrics_active,
    observation_active,
    observed_call,
    trace_span,
    tracing_active,
)
from repro.obs.logs import reset_logs


@pytest.fixture(autouse=True)
def clean_logs():
    reset_logs()
    yield
    reset_logs()


def _fake_task(task):
    """Stand-in worker task: records one counter and one span, returns doubled."""
    counter_add("sampler.chunks")
    with trace_span("executor.shard", chunk=task):
        pass
    return task * 2


class TestObservation:
    def test_enter_installs_and_exit_restores_globals(self):
        assert not observation_active()
        with Observation() as observation:
            assert observation_active()
            assert current_observation() is observation
            assert tracing_active() and metrics_active()
        assert not observation_active()
        assert not tracing_active() and not metrics_active()

    def test_observations_do_not_nest(self):
        with Observation():
            with pytest.raises(ObservabilityError, match="already active"):
                with Observation():
                    pass

    def test_exit_restores_disabled_state_after_exception(self):
        with pytest.raises(RuntimeError):
            with Observation():
                raise RuntimeError("boom")
        assert not observation_active() and not tracing_active()

    def test_meta_shape(self):
        with Observation() as observation:
            counter_add("engine.runs")
            with trace_span("engine.run"):
                pass
        meta = observation.meta()
        assert meta["metrics"]["counters"] == {"engine.runs": 1}
        assert meta["spans"]["events"] == 1
        assert meta["spans"]["dropped"] == 0
        assert meta["spans"]["names"] == ["engine.run"]
        assert meta["log"] == []


class TestObservedCall:
    def test_returns_result_and_payload(self):
        result, payload = observed_call(_fake_task, 21)
        assert result == 42
        assert payload["metrics"]["counters"] == {"sampler.chunks": 1}
        assert [event["name"] for event in payload["events"]] == ["executor.shard"]
        assert payload["logs"] == []

    def test_restores_parent_observation(self):
        """An in-process 'worker' call must not clobber a live parent observation."""
        with Observation() as observation:
            counter_add("engine.runs")
            result, payload = observed_call(_fake_task, 1)
            # Task-scoped state went to the payload, not the parent...
            assert observation.registry.counters == {"engine.runs": 1}
            # ...and the parent registry is active again afterwards.
            counter_add("engine.runs")
            assert observation.registry.counters == {"engine.runs": 2}
        assert payload["metrics"]["counters"] == {"sampler.chunks": 1}

    def test_payload_folds_into_parent(self):
        with Observation() as observation:
            result, payload = observed_call(_fake_task, 3)
            absorb_payload(payload)
        assert observation.registry.counters == {"sampler.chunks": 1}
        assert observation.recorder.span_names() == {"executor.shard"}

    def test_absorb_payload_without_observation_is_noop(self):
        absorb_payload({"metrics": {"counters": {"x": 1}}})  # no crash, nothing active

    def test_absorb_rejects_malformed_payload(self):
        with Observation() as observation:
            with pytest.raises(ObservabilityError, match="payload"):
                observation.absorb_payload("not-a-dict")
