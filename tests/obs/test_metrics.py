"""Metrics registry: counter/gauge/histogram semantics and deterministic merging."""

from __future__ import annotations

import pytest

from repro.exceptions import ObservabilityError
from repro.obs import Observation
from repro.obs.metrics import (
    HISTOGRAM_BOUNDS,
    Histogram,
    MetricsRegistry,
    active_registry,
    counter_add,
    gauge_max,
    gauge_set,
    metrics_active,
    observe_hist,
)


class TestDisabledPath:
    def test_inactive_by_default(self):
        assert not metrics_active()
        assert active_registry() is None

    def test_helpers_are_noops_when_inactive(self):
        counter_add("sampler.shots", 100)
        gauge_set("executor.chunks_in_flight", 3)
        gauge_max("reduction.tree_depth", 2)
        observe_hist("phase.sample", 0.1)  # nothing to assert: no crash


class TestRegistry:
    def test_counters_accumulate(self):
        registry = MetricsRegistry()
        registry.counter_add("sampler.jobs")
        registry.counter_add("sampler.jobs", 4)
        assert registry.counters == {"sampler.jobs": 5}

    def test_gauge_max_keeps_peak(self):
        registry = MetricsRegistry()
        registry.gauge_max("reduction.tree_depth", 3)
        registry.gauge_max("reduction.tree_depth", 1)
        registry.gauge_max("reduction.tree_depth", 5)
        assert registry.gauges["reduction.tree_depth"] == 5.0

    def test_snapshot_is_key_sorted_and_json_safe(self):
        import json

        registry = MetricsRegistry()
        registry.counter_add("z.last")
        registry.counter_add("a.first")
        registry.observe("phase.sample", 0.01)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["a.first", "z.last"]
        json.loads(json.dumps(snapshot))

    def test_helpers_reach_active_registry(self):
        with Observation() as observation:
            counter_add("engine.runs")
            gauge_max("executor.chunks_in_flight", 7)
            observe_hist("phase.ideal", 0.002)
        snapshot = observation.registry.snapshot()
        assert snapshot["counters"] == {"engine.runs": 1}
        assert snapshot["gauges"] == {"executor.chunks_in_flight": 7.0}
        assert snapshot["histograms"]["phase.ideal"]["count"] == 1


class TestHistogram:
    def test_log_bucket_assignment(self):
        histogram = Histogram()
        histogram.observe(5e-7)   # below the first decade bound (1e-6)
        histogram.observe(0.5)    # within (0.1, 1]
        histogram.observe(5000.0)  # beyond the last bound -> overflow
        snapshot = histogram.snapshot()
        assert snapshot["buckets"]["le:1e-06"] == 1
        assert snapshot["buckets"]["le:1"] == 1
        assert snapshot["buckets"]["le:inf"] == 1
        assert snapshot["count"] == 3
        assert snapshot["min"] == 5e-7
        assert snapshot["max"] == 5000.0

    def test_bucket_labels_cover_all_bounds(self):
        labels = set(Histogram().snapshot()["buckets"])
        assert labels == {f"le:{bound:g}" for bound in HISTOGRAM_BOUNDS} | {"le:inf"}

    def test_merge_adds_buckets_and_folds_extremes(self):
        left, right = Histogram(), Histogram()
        left.observe(0.2)
        right.observe(0.3)
        right.observe(7.0)
        left.merge_snapshot(right.snapshot())
        snapshot = left.snapshot()
        assert snapshot["count"] == 3
        assert snapshot["sum"] == pytest.approx(7.5)
        assert snapshot["min"] == 0.2
        assert snapshot["max"] == 7.0
        assert snapshot["buckets"]["le:1"] == 2
        assert snapshot["buckets"]["le:10"] == 1


class TestMerge:
    def _worker_snapshots(self):
        """Three fake worker payloads with overlapping names."""
        snapshots = []
        for index in range(3):
            registry = MetricsRegistry()
            registry.counter_add("sampler.chunks", index + 1)
            registry.counter_add(f"cache.sample.{'hits' if index else 'misses'}")
            registry.gauge_max("executor.chunks_in_flight", index * 2)
            registry.observe("phase.sample", 0.1 * (index + 1))
            snapshots.append(registry.snapshot())
        return snapshots

    def test_merge_is_order_independent(self):
        """Counters, gauges and histogram *bucket counts* are exactly
        order-independent (integer/max folds); histogram float sums are only
        approximately so and carry no determinism contract."""
        import itertools

        baseline = None
        for order in itertools.permutations(self._worker_snapshots()):
            merged = MetricsRegistry()
            for snapshot in order:
                merged.merge_snapshot(snapshot)
            snapshot = merged.snapshot()
            exact = (
                snapshot["counters"],
                snapshot["gauges"],
                {name: state["buckets"] for name, state in snapshot["histograms"].items()},
            )
            if baseline is None:
                baseline = exact
            else:
                assert exact == baseline

    def test_merged_counters_equal_serial_totals(self):
        merged = MetricsRegistry()
        for snapshot in self._worker_snapshots():
            merged.merge_snapshot(snapshot)
        assert merged.counters == {
            "sampler.chunks": 6,
            "cache.sample.misses": 1,
            "cache.sample.hits": 2,
        }
        assert merged.gauges == {"executor.chunks_in_flight": 4.0}
        assert merged.histograms["phase.sample"].count == 3

    def test_merge_rejects_non_dict(self):
        with pytest.raises(ObservabilityError):
            MetricsRegistry().merge_snapshot(["not", "a", "dict"])


class TestRows:
    def test_rows_are_uniform_and_sorted(self):
        registry = MetricsRegistry()
        registry.counter_add("engine.jobs", 4)
        registry.gauge_max("reduction.tree_depth", 2)
        registry.observe("phase.hammer", 0.3)
        rows = registry.as_rows()
        assert [row["kind"] for row in rows] == ["counter", "gauge", "histogram"]
        # format_table derives columns from the first row: keys must be uniform
        assert all(set(row) == set(rows[0]) for row in rows)
        histogram_row = rows[-1]
        assert histogram_row["count"] == 1
        assert histogram_row["value"] == pytest.approx(0.3)
