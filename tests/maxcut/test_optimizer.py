"""Tests for the classical QAOA optimisation loop."""

from __future__ import annotations

import pytest

from repro.circuits import QaoaParameters
from repro.exceptions import ExperimentError
from repro.maxcut import CutCostEvaluator, optimize_qaoa, ring_graph_problem
from repro.quantum import simulate_statevector


def ideal_executor(circuit):
    return simulate_statevector(circuit).measurement_distribution()


@pytest.fixture
def ring6():
    return ring_graph_problem(6)


class TestOptimizer:
    def test_improves_over_poor_initialisation(self, ring6):
        poor_start = QaoaParameters(gammas=(0.05,), betas=(0.05,))
        result = optimize_qaoa(
            ring6, ideal_executor, num_layers=1, initial_parameters=poor_start, max_evaluations=40
        )
        initial_cost = result.trace[0].expected_cost
        assert result.best_expected_cost <= initial_cost
        assert result.best_cost_ratio > 0.2

    def test_trace_records_every_evaluation(self, ring6):
        result = optimize_qaoa(ring6, ideal_executor, num_layers=1, max_evaluations=15)
        assert result.num_evaluations == len(result.trace)
        assert result.num_evaluations >= 1
        iterations = [point.iteration for point in result.trace]
        assert iterations == sorted(iterations)

    def test_best_is_minimum_of_trace(self, ring6):
        result = optimize_qaoa(ring6, ideal_executor, num_layers=1, max_evaluations=20)
        assert result.best_expected_cost == pytest.approx(
            min(point.expected_cost for point in result.trace)
        )

    def test_best_cost_ratio_consistent(self, ring6):
        evaluator = CutCostEvaluator(ring6)
        result = optimize_qaoa(ring6, ideal_executor, num_layers=1, max_evaluations=20)
        assert result.best_cost_ratio == pytest.approx(
            result.best_expected_cost / evaluator.minimum_cost()
        )

    def test_rejects_nonpositive_budget(self, ring6):
        with pytest.raises(ExperimentError):
            optimize_qaoa(ring6, ideal_executor, max_evaluations=0)

    def test_rejects_layer_mismatch(self, ring6):
        with pytest.raises(ExperimentError):
            optimize_qaoa(
                ring6,
                ideal_executor,
                num_layers=2,
                initial_parameters=QaoaParameters(gammas=(0.1,), betas=(0.1,)),
            )

    def test_two_layer_optimisation_runs(self, ring6):
        result = optimize_qaoa(ring6, ideal_executor, num_layers=2, max_evaluations=25)
        assert result.best_parameters.num_layers == 2
