"""Tests for (beta, gamma) landscape scans."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import hammer
from repro.exceptions import ExperimentError
from repro.maxcut import landscape_sharpness, ring_graph_problem, scan_landscape
from repro.quantum import NoiseModel, NoisySampler, simulate_statevector


@pytest.fixture
def ring6():
    return ring_graph_problem(6)


def ideal_executor(circuit):
    return simulate_statevector(circuit).measurement_distribution()


class TestScan:
    def test_grid_shape_and_points(self, ring6):
        scan = scan_landscape(ring6, ideal_executor, beta_values=[-0.4, -0.2], gamma_values=[0.2, 0.4, 0.6])
        assert scan.cost_ratio_grid.shape == (2, 3)
        assert len(scan.points) == 6

    def test_best_point_is_max_of_grid(self, ring6):
        scan = scan_landscape(ring6, ideal_executor, beta_values=np.linspace(-0.6, 0, 3),
                              gamma_values=np.linspace(0.1, 0.9, 3))
        assert scan.best_point().cost_ratio == pytest.approx(scan.cost_ratio_grid.max())

    def test_mean_cost_ratio(self, ring6):
        scan = scan_landscape(ring6, ideal_executor, beta_values=[-0.4], gamma_values=[0.4])
        assert scan.mean_cost_ratio() == pytest.approx(scan.cost_ratio_grid.mean())

    def test_rejects_empty_axes(self, ring6):
        with pytest.raises(ExperimentError):
            scan_landscape(ring6, ideal_executor, beta_values=[], gamma_values=[0.1])

    def test_extra_layers_supported(self, ring6):
        scan = scan_landscape(ring6, ideal_executor, beta_values=[-0.4], gamma_values=[0.4], extra_layers=1)
        assert len(scan.points) == 1

    def test_landscape_is_not_flat_for_ideal_execution(self, ring6):
        scan = scan_landscape(
            ring6, ideal_executor,
            beta_values=np.linspace(-0.6, 0.0, 4), gamma_values=np.linspace(0.0, 1.0, 4),
        )
        assert scan.cost_ratio_grid.max() - scan.cost_ratio_grid.min() > 0.1


class TestSharpness:
    def test_sharpness_positive_for_varying_landscape(self, ring6):
        scan = scan_landscape(
            ring6, ideal_executor,
            beta_values=np.linspace(-0.6, 0.0, 4), gamma_values=np.linspace(0.0, 1.0, 4),
        )
        assert landscape_sharpness(scan) > 0

    def test_sharpness_rejects_tiny_grid(self, ring6):
        scan = scan_landscape(ring6, ideal_executor, beta_values=[-0.4], gamma_values=[0.4])
        with pytest.raises(ExperimentError):
            landscape_sharpness(scan)

    def test_hammer_sharpens_noisy_landscape(self, ring6):
        """The paper's Figure 10(b) claim, on a small instance."""
        noise = NoiseModel(single_qubit_error=0.004, two_qubit_error=0.04)
        sampler = NoisySampler(noise, shots=3000, seed=4)

        def noisy_executor(circuit):
            return sampler.run(circuit)

        def hammer_executor(circuit):
            return hammer(noisy_executor(circuit))

        betas = np.linspace(-0.6, 0.0, 3)
        gammas = np.linspace(0.0, 1.0, 3)
        noisy_scan = scan_landscape(ring6, noisy_executor, betas, gammas)
        hammer_scan = scan_landscape(ring6, hammer_executor, betas, gammas)
        assert hammer_scan.mean_cost_ratio() > noisy_scan.mean_cost_ratio()
