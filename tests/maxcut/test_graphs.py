"""Tests for max-cut problem graph generators."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import GraphError
from repro.maxcut import (
    erdos_renyi_problem,
    grid_graph_problem,
    regular_graph_problem,
    ring_graph_problem,
    sherrington_kirkpatrick_problem,
)


class TestGridGraphs:
    @pytest.mark.parametrize("num_nodes", [4, 6, 9, 12, 16])
    def test_node_count_and_connectivity(self, num_nodes):
        problem = grid_graph_problem(num_nodes)
        assert problem.num_nodes == num_nodes
        assert nx.is_connected(problem.graph)
        assert problem.family == "grid"

    def test_low_degree(self):
        problem = grid_graph_problem(16)
        degrees = [d for _, d in problem.graph.degree()]
        assert max(degrees) <= 4

    def test_rejects_tiny(self):
        with pytest.raises(GraphError):
            grid_graph_problem(1)


class TestRegularGraphs:
    @pytest.mark.parametrize("num_nodes", [4, 6, 8, 12])
    def test_every_node_has_degree_three(self, num_nodes):
        problem = regular_graph_problem(num_nodes, degree=3, seed=1)
        assert all(d == 3 for _, d in problem.graph.degree())
        assert problem.family == "3-regular"

    def test_reproducible_with_seed(self):
        a = regular_graph_problem(8, 3, seed=5)
        b = regular_graph_problem(8, 3, seed=5)
        assert a.edges() == b.edges()

    def test_rejects_odd_product(self):
        with pytest.raises(GraphError):
            regular_graph_problem(5, degree=3)

    def test_rejects_too_few_nodes(self):
        with pytest.raises(GraphError):
            regular_graph_problem(3, degree=3)


class TestErdosRenyi:
    def test_connected_and_sized(self):
        problem = erdos_renyi_problem(8, edge_probability=0.4, seed=2)
        assert problem.num_nodes == 8
        assert nx.is_connected(problem.graph)
        assert problem.family == "erdos-renyi"

    def test_density_controls_edge_count(self):
        sparse = erdos_renyi_problem(10, edge_probability=0.2, seed=1)
        dense = erdos_renyi_problem(10, edge_probability=0.8, seed=1)
        assert dense.num_edges > sparse.num_edges

    def test_rejects_bad_probability(self):
        with pytest.raises(GraphError):
            erdos_renyi_problem(8, edge_probability=0.0)


class TestSkAndRing:
    def test_sk_is_complete_with_pm1_weights(self):
        problem = sherrington_kirkpatrick_problem(6, seed=3)
        assert problem.num_edges == 15
        assert set(w for _, _, w in problem.edges()) <= {-1.0, 1.0}
        assert problem.family == "sk"

    def test_sk_rejects_tiny(self):
        with pytest.raises(GraphError):
            sherrington_kirkpatrick_problem(1)

    def test_ring(self):
        problem = ring_graph_problem(7)
        assert problem.num_edges == 7
        assert all(d == 2 for _, d in problem.graph.degree())

    def test_ring_rejects_tiny(self):
        with pytest.raises(GraphError):
            ring_graph_problem(2)


class TestProblemApi:
    def test_edges_are_sorted_with_weights(self):
        problem = ring_graph_problem(4)
        edges = problem.edges()
        assert edges == sorted(edges)
        assert all(w == 1.0 for _, _, w in edges)

    def test_describe(self):
        problem = grid_graph_problem(6, seed=9)
        description = problem.describe()
        assert description["family"] == "grid"
        assert description["num_nodes"] == 6
        assert description["seed"] == 9
