"""Tests for cut-cost evaluation and exact extrema."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bitstring import int_to_bitstring
from repro.exceptions import GraphError
from repro.maxcut import (
    CutCostEvaluator,
    cut_cost,
    cut_size,
    regular_graph_problem,
    ring_graph_problem,
    sherrington_kirkpatrick_problem,
)


@pytest.fixture
def ring4():
    return ring_graph_problem(4)


class TestCostEvaluation:
    def test_optimal_cut_cost(self, ring4):
        # Alternating colouring cuts all 4 edges: cost = -4.
        assert cut_cost(ring4, "0101") == pytest.approx(-4.0)
        assert cut_size(ring4, "0101") == pytest.approx(4.0)

    def test_trivial_cut_cost(self, ring4):
        assert cut_cost(ring4, "0000") == pytest.approx(4.0)
        assert cut_size(ring4, "0000") == pytest.approx(0.0)

    def test_partial_cut(self, ring4):
        assert cut_cost(ring4, "0001") == pytest.approx(0.0)
        assert cut_size(ring4, "0001") == pytest.approx(2.0)

    def test_cost_symmetric_under_global_flip(self, ring4):
        evaluator = CutCostEvaluator(ring4)
        assert evaluator.cost("0011") == pytest.approx(evaluator.cost("1100"))

    def test_rejects_wrong_width(self, ring4):
        evaluator = CutCostEvaluator(ring4)
        with pytest.raises(Exception):
            evaluator.cost("00001")

    @given(st.integers(min_value=0, max_value=2**6 - 1))
    @settings(max_examples=30)
    def test_cost_plus_two_cut_is_total_weight(self, assignment):
        """Identity: cost = total_weight - 2 * cut_value for unweighted graphs."""
        problem = regular_graph_problem(6, 3, seed=4)
        evaluator = CutCostEvaluator(problem)
        bits = int_to_bitstring(assignment, 6)
        total_weight = sum(w for _, _, w in problem.edges())
        assert evaluator.cost(bits) == pytest.approx(total_weight - 2 * evaluator.cut_value(bits))


class TestExtrema:
    def test_ring_extrema(self, ring4):
        evaluator = CutCostEvaluator(ring4)
        assert evaluator.minimum_cost() == pytest.approx(-4.0)
        assert evaluator.maximum_cost() == pytest.approx(4.0)
        assert set(evaluator.optimal_cuts()) == {"0101", "1010"}

    def test_minimum_cost_negative_for_regular_graphs(self):
        evaluator = CutCostEvaluator(regular_graph_problem(8, 3, seed=1))
        assert evaluator.minimum_cost() < 0

    def test_optimal_cuts_achieve_minimum(self):
        evaluator = CutCostEvaluator(sherrington_kirkpatrick_problem(6, seed=2))
        for cut in evaluator.optimal_cuts():
            assert evaluator.cost(cut) == pytest.approx(evaluator.minimum_cost())

    def test_extrema_cached(self, ring4):
        evaluator = CutCostEvaluator(ring4)
        first = evaluator.minimum_cost()
        second = evaluator.minimum_cost()
        assert first == second


class TestNeighborCosts:
    def test_distance_one_costs_are_worse_than_optimal(self, ring4):
        evaluator = CutCostEvaluator(ring4)
        costs = evaluator.costs_at_hamming_distance(1)
        assert all(cost > evaluator.minimum_cost() for cost in costs)

    def test_distance_zero_returns_optimal_costs(self, ring4):
        evaluator = CutCostEvaluator(ring4)
        costs = evaluator.costs_at_hamming_distance(0)
        assert all(cost == pytest.approx(evaluator.minimum_cost()) for cost in costs)

    def test_average_cost_degrades_with_distance(self):
        evaluator = CutCostEvaluator(regular_graph_problem(10, 3, seed=6))
        mean_d1 = sum(evaluator.costs_at_hamming_distance(1)) / len(evaluator.costs_at_hamming_distance(1))
        mean_d2 = sum(evaluator.costs_at_hamming_distance(2)) / len(evaluator.costs_at_hamming_distance(2))
        assert mean_d1 > evaluator.minimum_cost()
        assert mean_d2 > evaluator.minimum_cost()

    def test_rejects_bad_distance(self, ring4):
        with pytest.raises(GraphError):
            CutCostEvaluator(ring4).costs_at_hamming_distance(-1)
