"""Tests for the dataset record schema."""

from __future__ import annotations

import pytest

from repro.core import Distribution
from repro.datasets import CircuitRecord, DatasetSummary
from repro.exceptions import DatasetError
from repro.maxcut import ring_graph_problem


@pytest.fixture
def bv_record():
    return CircuitRecord(
        record_id="bv-test",
        benchmark="bv",
        device="ibm-paris",
        num_qubits=3,
        noisy_distribution=Distribution({"111": 0.7, "110": 0.3}),
        ideal_distribution=Distribution({"111": 1.0}),
        correct_outcomes=("111",),
    )


@pytest.fixture
def qaoa_record():
    problem = ring_graph_problem(4)
    return CircuitRecord(
        record_id="qaoa-test",
        benchmark="qaoa",
        device="google-sycamore",
        num_qubits=4,
        noisy_distribution=Distribution({"0101": 0.6, "0000": 0.4}),
        ideal_distribution=Distribution({"0101": 1.0}),
        problem=problem,
        num_layers=1,
    )


class TestValidation:
    def test_valid_records_construct(self, bv_record, qaoa_record):
        assert bv_record.num_qubits == 3
        assert qaoa_record.problem is not None

    def test_rejects_width_mismatch(self):
        with pytest.raises(DatasetError):
            CircuitRecord(
                record_id="broken",
                benchmark="bv",
                device="d",
                num_qubits=4,
                noisy_distribution=Distribution({"111": 1.0}),
                ideal_distribution=Distribution({"1111": 1.0}),
                correct_outcomes=("1111",),
            )

    def test_rejects_missing_reference(self):
        with pytest.raises(DatasetError):
            CircuitRecord(
                record_id="broken",
                benchmark="bv",
                device="d",
                num_qubits=3,
                noisy_distribution=Distribution({"111": 1.0}),
                ideal_distribution=Distribution({"111": 1.0}),
            )


class TestAccessors:
    def test_reference_outcomes_for_bv(self, bv_record):
        assert bv_record.reference_outcomes() == ("111",)

    def test_reference_outcomes_for_qaoa_are_optimal_cuts(self, qaoa_record):
        assert set(qaoa_record.reference_outcomes()) == {"0101", "1010"}

    def test_cost_evaluator_for_qaoa(self, qaoa_record):
        evaluator = qaoa_record.cost_evaluator()
        assert evaluator.minimum_cost() == pytest.approx(-4.0)

    def test_cost_evaluator_rejected_for_bv(self, bv_record):
        with pytest.raises(DatasetError):
            bv_record.cost_evaluator()


class TestSummary:
    def test_as_row(self):
        summary = DatasetSummary(
            name="BV",
            benchmark="Bernstein-Vazirani",
            num_circuits=88,
            qubit_range=(5, 15),
            layer_range=None,
            figure_of_merit=("IST", "PST"),
        )
        row = summary.as_row()
        assert row["qubits"] == "5-15"
        assert row["layers"] == "-"
        assert row["figure_of_merit"] == "IST, PST"

    def test_as_row_with_layers(self):
        summary = DatasetSummary(
            name="QAOA",
            benchmark="Maxcut",
            num_circuits=70,
            qubit_range=(5, 20),
            layer_range=(2, 4),
            figure_of_merit=("CR",),
        )
        assert summary.as_row()["layers"] == "2-4"
