"""Tests for the synthetic IBM benchmark suite (Table 2)."""

from __future__ import annotations

import pytest

from repro.datasets import IbmSuiteConfig, full_table2_config, table2_summaries
from repro.datasets.ibm_suite import (
    default_ibm_devices,
    generate_bv_records,
    generate_ibm_suite,
    generate_qaoa_records,
)
from repro.exceptions import DatasetError
from repro.quantum import ibm_paris


@pytest.fixture(scope="module")
def tiny_config():
    return IbmSuiteConfig(
        bv_qubit_range=(4, 6),
        bv_keys_per_size=1,
        qaoa_qubit_range=(4, 6),
        qaoa_layer_values=(1,),
        qaoa_instances_per_size=1,
        shots=1024,
        seed=7,
    )


@pytest.fixture(scope="module")
def tiny_devices():
    return [ibm_paris()]


class TestConfig:
    def test_full_config_matches_table2_ranges(self):
        config = full_table2_config()
        assert config.bv_qubit_range == (5, 15)
        assert config.qaoa_qubit_range == (5, 20)
        assert config.qaoa_layer_values == (2, 4)

    def test_rejects_invalid_ranges(self):
        with pytest.raises(DatasetError):
            IbmSuiteConfig(bv_qubit_range=(10, 5))
        with pytest.raises(DatasetError):
            IbmSuiteConfig(shots=0)

    def test_default_devices_are_the_three_ibm_machines(self):
        names = {device.name for device in default_ibm_devices()}
        assert names == {"ibm-paris", "ibm-manhattan", "ibm-toronto"}


class TestBvRecords:
    def test_record_count_and_shape(self, tiny_config, tiny_devices):
        records = generate_bv_records(tiny_config, tiny_devices)
        assert len(records) == 3  # sizes 4, 5, 6 with one key each on one device
        for record in records:
            assert record.benchmark == "bv"
            assert record.correct_outcomes is not None
            assert record.noisy_distribution.num_bits == record.num_qubits
            assert record.ideal_distribution.probability(record.correct_outcomes[0]) == pytest.approx(1.0)

    def test_noisy_distributions_contain_errors(self, tiny_config, tiny_devices):
        records = generate_bv_records(tiny_config, tiny_devices)
        assert any(record.noisy_distribution.num_outcomes > 1 for record in records)

    def test_reproducible_for_same_seed(self, tiny_config, tiny_devices):
        first = generate_bv_records(tiny_config, tiny_devices)
        second = generate_bv_records(tiny_config, tiny_devices)
        assert [r.record_id for r in first] == [r.record_id for r in second]
        assert all(a.noisy_distribution == b.noisy_distribution for a, b in zip(first, second))


class TestQaoaRecords:
    def test_record_families(self, tiny_config, tiny_devices):
        records = generate_qaoa_records(tiny_config, tiny_devices)
        families = {record.metadata["family"] for record in records}
        assert families == {"3-regular", "random"}
        for record in records:
            assert record.problem is not None
            assert record.num_layers in tiny_config.qaoa_layer_values

    def test_single_family_selection(self, tiny_config, tiny_devices):
        records = generate_qaoa_records(tiny_config, tiny_devices, families=("random",))
        assert all(record.metadata["family"] == "random" for record in records)


class TestSuiteAndSummary:
    def test_suite_combines_bv_and_qaoa(self, tiny_config, tiny_devices):
        records = generate_ibm_suite(tiny_config, tiny_devices)
        benchmarks = {record.benchmark for record in records}
        assert benchmarks == {"bv", "qaoa"}

    def test_table2_summaries(self, tiny_config, tiny_devices):
        records = generate_ibm_suite(tiny_config, tiny_devices)
        summaries = table2_summaries(records)
        names = [(s.name, s.benchmark) for s in summaries]
        assert ("BV", "Bernstein-Vazirani") in names
        assert any("3-Reg" in benchmark for _, benchmark in names)
        assert any("Rand" in benchmark for _, benchmark in names)
        total = sum(s.num_circuits for s in summaries)
        assert total == len(records)
