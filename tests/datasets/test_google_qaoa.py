"""Tests for the synthetic Google Sycamore QAOA dataset (Table 1)."""

from __future__ import annotations

import pytest

from repro.datasets import GoogleDatasetConfig, full_table1_config, generate_google_dataset, table1_summaries
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def tiny_records():
    config = GoogleDatasetConfig(
        grid_qubit_range=(6, 8),
        grid_layer_values=(1,),
        regular_qubit_range=(4, 6),
        regular_layer_values=(1,),
        instances_per_size=1,
        shots=1024,
        seed=11,
    )
    return generate_google_dataset(config)


class TestConfig:
    def test_full_config_matches_table1(self):
        config = full_table1_config()
        assert config.grid_qubit_range == (6, 20)
        assert config.grid_layer_values == (1, 2, 3, 4, 5)
        assert config.regular_qubit_range == (4, 16)
        assert config.regular_layer_values == (1, 2, 3)

    def test_rejects_invalid(self):
        with pytest.raises(DatasetError):
            GoogleDatasetConfig(grid_qubit_range=(10, 5))
        with pytest.raises(DatasetError):
            GoogleDatasetConfig(shots=0)


class TestGeneration:
    def test_families_present(self, tiny_records):
        families = {record.metadata["family"] for record in tiny_records}
        assert families == {"grid", "3-regular"}

    def test_records_are_qaoa_with_problems(self, tiny_records):
        for record in tiny_records:
            assert record.benchmark == "qaoa"
            assert record.problem is not None
            assert record.device == "google-sycamore"
            assert record.metadata["readout_corrected"] is True

    def test_noisy_distribution_valid(self, tiny_records):
        for record in tiny_records:
            total = sum(record.noisy_distribution.probabilities().values())
            assert total == pytest.approx(1.0)

    def test_sk_family_optional(self):
        config = GoogleDatasetConfig(
            grid_qubit_range=(6, 6),
            grid_layer_values=(1,),
            regular_qubit_range=(4, 4),
            regular_layer_values=(1,),
            include_sk=True,
            shots=512,
        )
        records = generate_google_dataset(config)
        assert any(record.metadata["family"] == "sk" for record in records)


class TestSummary:
    def test_table1_summaries(self, tiny_records):
        summaries = table1_summaries(tiny_records)
        labels = {summary.benchmark for summary in summaries}
        assert "Maxcut on Grid" in labels
        assert "Maxcut on 3-Reg Graphs" in labels
        assert sum(summary.num_circuits for summary in summaries) == len(tiny_records)
