"""End-to-end integration tests: circuit → noisy histogram → HAMMER → metrics.

These tests exercise the full public API the way the examples and benchmarks
do, asserting the paper's qualitative claims on small instances:

* HAMMER improves PST/IST for BV circuits whose baseline output is noisy;
* HAMMER improves the Cost Ratio and reduces TVD for QAOA circuits;
* the erroneous outcomes it exploits really are clustered in Hamming space.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import Distribution, HammerConfig, hammer
from repro.baselines import ReadoutCalibration, ReadoutMitigationStage
from repro.circuits import bernstein_vazirani, default_qaoa_parameters, ghz_circuit, ghz_correct_outcomes, qaoa_circuit
from repro.core import HammerStage, PostProcessingPipeline, TruncationStage, expected_hamming_distance, uniform_model_ehd
from repro.maxcut import CutCostEvaluator, regular_graph_problem
from repro.metrics import (
    cost_ratio,
    inference_strength,
    probability_of_successful_trial,
    total_variation_distance,
)
from repro.quantum import NoisySampler, get_device, ideal_distribution, transpile


@pytest.fixture(scope="module")
def paris():
    return get_device("ibm-paris")


class TestBvEndToEnd:
    @pytest.fixture(scope="class")
    def bv_run(self):
        device = get_device("ibm-paris")
        key = "10110101"
        circuit = bernstein_vazirani(key)
        transpiled = transpile(circuit, coupling_map=device.coupling_map, basis_gates=device.basis_gates)
        sampler = NoisySampler(device.noise_model, shots=8192, seed=17)
        noisy = sampler.run(transpiled.circuit).mapped(transpiled.measurement_permutation())
        return key, noisy

    def test_baseline_is_noisy_but_structured(self, bv_run):
        key, noisy = bv_run
        assert probability_of_successful_trial(noisy, key) < 0.9
        assert expected_hamming_distance(noisy, [key]) < uniform_model_ehd(len(key))

    def test_hammer_improves_pst_and_ist(self, bv_run):
        key, noisy = bv_run
        corrected = hammer(noisy)
        assert probability_of_successful_trial(corrected, key) > probability_of_successful_trial(noisy, key)
        assert inference_strength(corrected, key) > inference_strength(noisy, key)

    def test_hammer_makes_key_the_argmax(self, bv_run):
        key, noisy = bv_run
        assert hammer(noisy).most_probable() == key


class TestGhzEndToEnd:
    def test_hammer_boosts_ghz_correct_mass(self, paris):
        circuit = ghz_circuit(8)
        correct = ghz_correct_outcomes(8)
        sampler = NoisySampler(paris.noise_model.scaled(2.0), shots=8192, seed=23)
        noisy = sampler.run(circuit)
        corrected = hammer(noisy)
        assert probability_of_successful_trial(corrected, correct) > probability_of_successful_trial(
            noisy, correct
        )


class TestQaoaEndToEnd:
    @pytest.fixture(scope="class")
    def qaoa_run(self):
        device = get_device("google-sycamore")
        problem = regular_graph_problem(10, 3, seed=9)
        circuit = qaoa_circuit(problem, default_qaoa_parameters(2))
        ideal = ideal_distribution(circuit)
        sampler = NoisySampler(device.noise_model, shots=8192, seed=29)
        noisy = sampler.run(circuit, ideal=ideal)
        return problem, ideal, noisy

    def test_noise_degrades_cost_ratio(self, qaoa_run):
        problem, ideal, noisy = qaoa_run
        evaluator = CutCostEvaluator(problem)
        minimum = evaluator.minimum_cost()
        assert cost_ratio(noisy, evaluator.cost, minimum) < cost_ratio(ideal, evaluator.cost, minimum)

    def test_hammer_improves_cost_ratio(self, qaoa_run):
        problem, _, noisy = qaoa_run
        evaluator = CutCostEvaluator(problem)
        minimum = evaluator.minimum_cost()
        corrected = hammer(noisy)
        assert cost_ratio(corrected, evaluator.cost, minimum) > cost_ratio(noisy, evaluator.cost, minimum)

    def test_hammer_reduces_tvd_to_ideal(self, qaoa_run):
        _, ideal, noisy = qaoa_run
        corrected = hammer(noisy)
        assert total_variation_distance(corrected, ideal) < total_variation_distance(noisy, ideal)


class TestPipelineEndToEnd:
    def test_readout_mitigation_then_hammer(self, paris):
        key = "111111"
        circuit = bernstein_vazirani(key)
        sampler = NoisySampler(paris.noise_model.scaled(2.0), shots=8192, seed=31)
        noisy = sampler.run(circuit)
        calibration = ReadoutCalibration.from_readout_error(
            paris.noise_model.scaled(2.0).readout_error, len(key)
        )
        pipeline = PostProcessingPipeline(
            [ReadoutMitigationStage(calibration), TruncationStage(top_k=500), HammerStage(HammerConfig())]
        )
        corrected = pipeline(noisy)
        assert probability_of_successful_trial(corrected, key) > probability_of_successful_trial(noisy, key)

    def test_hammer_handles_large_support(self):
        rng = np.random.default_rng(41)
        data = {}
        correct = "1" * 14
        data[correct] = 400.0
        while len(data) < 3000:
            outcome = "".join(rng.choice(["0", "1"], size=14))
            data[outcome] = float(rng.integers(1, 5))
        noisy = Distribution(data, num_bits=14)
        corrected = hammer(noisy)
        assert corrected.most_probable() == correct
        assert sum(corrected.probabilities().values()) == pytest.approx(1.0)
